//! The communication-process event loop.
//!
//! Every non-leaf node of the overlay — the root (co-located with the
//! front-end) and each internal node — runs [`CommProcess::run`] on its own
//! thread. The loop multiplexes:
//!
//! * upstream data from children, buffered by the stream's synchronization
//!   filter into waves and reduced by its transformation filter;
//! * downstream multicast from the parent (or, at the root, commands from
//!   the front-end handle), routed only toward subtrees containing stream
//!   members and optionally transformed per hop;
//! * control traffic: stream creation/teardown, on-demand filter loading,
//!   failure notices and orderly shutdown.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_channel::{Receiver, Sender};
use parking_lot::{Mutex, RwLock};

use tbon_topology::{NodeId, Role, Topology};
use tbon_transport::{Delivery, Frame, Link, NodeEndpoint, TransportError};

use crate::config::{FlowConfig, NetworkConfig};
use crate::error::{Result, TbonError};
use crate::executor::{execute, FilterJob, FilterPool, SharedFilter, WaveOutput};
use crate::filter::{FilterContext, FilterRegistry, SyncContext, Synchronization, Transformation};
use crate::health::{
    FlowSummary, HealthMonitor, HealthScore, HealthSignal, IncidentBatch, IncidentBundle,
    IncidentReason, INCIDENT_FILTER,
};
use crate::packet::{Packet, Rank};
use crate::proto::{decode_message, Envelope, FilterKind, Message, NetEvent, PerfCounters};
use crate::stream::{Members, StreamId, StreamMode, StreamSpec, Tag};
use crate::telemetry::{
    now_us, EventRing, LogHistogram, MetricsSample, SpanRing, TraceSpan, TraceStage,
    METRICS_FILTER, TRACE_FILTER,
};
use crate::value::DataValue;

/// Capacity of each process's structured event ring.
const EVENT_RING_CAP: usize = 256;

/// Commands from the front-end handle into the root process.
pub(crate) enum FeCommand {
    NewStream {
        spec: StreamSpec,
        reply: Sender<Result<(StreamId, Receiver<Packet>)>>,
    },
    Send {
        stream: StreamId,
        tag: Tag,
        value: DataValue,
        reply: Sender<Result<()>>,
    },
    CloseStream {
        stream: StreamId,
        reply: Sender<Result<()>>,
    },
    LoadFilter {
        name: String,
        kind: FilterKind,
        reply: Sender<Result<bool>>,
    },
    Shutdown {
        reply: Sender<Result<()>>,
    },
    OpenMetrics {
        interval: Duration,
        merge: bool,
        reply: Sender<Result<(StreamId, Receiver<Packet>)>>,
    },
    OpenTrace {
        interval: Duration,
        reply: Sender<Result<(StreamId, Receiver<Packet>)>>,
    },
    OpenIncident {
        reply: Sender<Result<(StreamId, Receiver<Packet>)>>,
    },
    WaveLatency {
        reply: Sender<HashMap<StreamId, LogHistogram>>,
    },
}

/// State of this process's periodic metrics publishing (armed when a
/// metrics stream is open — the process itself is a stream member).
struct MetricsPublisher {
    stream: StreamId,
    interval: Duration,
    next_fire: Instant,
    seq: u64,
    /// Counter values at the previous publish; samples carry deltas.
    last: PerfCounters,
}

/// State of this process's periodic trace-batch publishing (armed while a
/// trace stream is open — every process, leaf or not, is a member).
struct TracePublisher {
    stream: StreamId,
    interval: Duration,
    next_fire: Instant,
    seq: u64,
}

/// Per-(stream, process) state.
struct StreamState {
    /// Stream members (back-end ranks) below or at this node's subtree.
    members: Vec<Rank>,
    /// Children currently expected to contribute upstream packets.
    expected: Vec<Rank>,
    /// Children that downstream traffic must be forwarded to.
    down_routes: Vec<Rank>,
    sync: Box<dyn Synchronization>,
    /// Transformation state, shared with the filter pool's workers; locked
    /// once per wave, wherever the wave executes.
    tfilter: SharedFilter,
    dfilter: Option<Box<dyn Transformation>>,
    mode: StreamMode,
    /// Waves of this stream submitted to the pool whose outputs have not
    /// come back yet. The inline fast path requires this to be zero, so a
    /// small wave can never overtake a queued one.
    in_flight: usize,
    /// Child-merge attribution for the wave currently buffering in `sync`,
    /// tracked only for trace-sampled packets: the canonical trace id (the
    /// minimum nonzero id seen, matching the executor's wave id), the local
    /// arrival time of the first traced packet, and the arrival time plus
    /// rank of the latest — first-to-last is the straggler wait. Reset when
    /// the sync filter releases waves.
    merge_trace: u64,
    merge_first_us: u64,
    merge_last_us: u64,
    merge_last_from: u32,
    /// Unconditional first/last child-arrival tracking for the wave
    /// currently buffering, feeding the health plane's straggler-gap
    /// signal. Separate from the trace attribution above (which only
    /// covers sampled packets); reuses the arrival `Instant` the sync
    /// context already takes, so it costs no extra clock reads. Reset
    /// when the sync filter releases waves.
    gap_first: Option<Instant>,
    gap_last: Option<Instant>,
    gap_last_from: u32,
}

/// Tracks one in-flight LoadFilter probe.
struct FilterProbe {
    awaiting: HashSet<Rank>,
    ok: bool,
}

/// Downstream credit window toward one child (see [`FlowConfig`]).
///
/// Data frames spend credit; [`Message::CreditGrant`]s from the child
/// return it. When credit runs out (or the transport itself pushes back)
/// frames park in `pending` — strictly FIFO, so per-stream downstream
/// order survives a stall — and the window is *closed* until the child
/// grants again. `closed_since` measures the child's **silence**, not its
/// backlog: every grant refreshes it, so only a child that stops granting
/// entirely trips the liveness deadline.
struct ChildFlow {
    credit_frames: u64,
    credit_bytes: u64,
    /// Frames waiting for credit, with their charged wire size and the
    /// local time they parked (feeds the credit-park trace span).
    pending: VecDeque<(StreamId, Arc<Envelope>, u64, u64)>,
    /// Set while the window is closed with frames parked; refreshed by
    /// every grant, cleared when the backlog drains.
    closed_since: Option<Instant>,
}

impl ChildFlow {
    fn open(cfg: FlowConfig) -> ChildFlow {
        ChildFlow {
            credit_frames: cfg.window_frames,
            credit_bytes: cfg.effective_window_bytes(),
            pending: VecDeque::new(),
            closed_since: None,
        }
    }
}

/// Role-specific halves of a communication process.
enum ProcessRole {
    Root {
        fe_cmd: Receiver<FeCommand>,
        fe_events: Sender<NetEvent>,
        fe_streams: HashMap<StreamId, Sender<Packet>>,
        next_stream: u32,
        shutdown_reply: Option<Sender<Result<()>>>,
        filter_replies: HashMap<String, Sender<Result<bool>>>,
    },
    Internal {
        parent: Rank,
    },
}

/// A communication process: the root or an internal node.
pub(crate) struct CommProcess {
    rank: Rank,
    endpoint: NodeEndpoint,
    topology: Arc<RwLock<Topology>>,
    registry: Arc<FilterRegistry>,
    config: NetworkConfig,
    streams: HashMap<StreamId, StreamState>,
    dead_children: HashSet<Rank>,
    shutting_down: bool,
    shutdown_pending: HashSet<Rank>,
    filter_probes: HashMap<String, FilterProbe>,
    /// Set when the parent vanished; cleared by a `NewParent`
    /// reconfiguration. Holds the give-up deadline.
    orphaned_until: Option<Instant>,
    /// Lifetime activity counters, queryable via `Message::GetPerf`.
    perf: PerfCounters,
    /// Peers whose send failure has already been reported via
    /// [`NetEvent::SendFailed`] (one event per peer, not per frame).
    failed_sends_reported: HashSet<Rank>,
    /// End-to-end wave latency observed this publish interval (root only —
    /// drained into each metrics sample).
    wave_latency_interval: LogHistogram,
    /// Lifetime per-stream wave latency (root only), served to the
    /// front-end via [`FeCommand::WaveLatency`].
    wave_latency_by_stream: HashMap<StreamId, LogHistogram>,
    /// Per-execution transformation runtime this publish interval.
    filter_exec_interval: LogHistogram,
    /// Pool queue wait per pooled wave this publish interval.
    executor_wait_interval: LogHistogram,
    /// The out-of-band filter execution plane (empty when
    /// `filter_pool.workers == 0`: everything then runs inline).
    pool: FilterPool,
    /// Waves currently in the pool across all streams; drained before
    /// shutdown concludes so no filter output is lost.
    pool_in_flight: usize,
    /// Bounded ring of structured lifecycle events.
    events: EventRing,
    /// Armed while a metrics stream is open.
    metrics: Option<MetricsPublisher>,
    /// Armed while a trace stream is open.
    trace_pub: Option<TracePublisher>,
    /// Bounded ring of trace spans recorded at this process, drained into
    /// the trace stream each publish interval.
    spans: SpanRing,
    /// Streams a lost leaf child was a member of, so a later re-adoption
    /// (the supervisor reattaching a back-end whose link transiently died)
    /// can restore its membership instead of leaving it silently excluded.
    lost_leaf_streams: HashMap<Rank, Vec<StreamId>>,
    /// Per-child downstream credit windows; populated lazily on the first
    /// downstream data frame to each child. Empty when flow is disabled.
    flow: HashMap<Rank, ChildFlow>,
    /// How many downstream frames are parked behind closed windows, per
    /// stream. A stream with parked frames has its wave admission paused
    /// (see [`CommProcess::process_waves`]).
    parked_by_stream: HashMap<StreamId, usize>,
    /// Waves released by synchronization while their stream's window was
    /// closed, re-admitted in order once the backlog drains.
    held_waves: HashMap<StreamId, Vec<Vec<Packet>>>,
    /// Downstream data frames consumed from the parent but not yet granted
    /// back (internal nodes only; grants are deferred while any of our own
    /// child windows is closed, which is what propagates pressure up).
    consumed_frames: u64,
    consumed_bytes: u64,
    /// When the last zero-credit keepalive grant went to the parent.
    /// Deferred grants must not read as death upstream, so a paced
    /// `CreditGrant { 0, 0 }` proves liveness while pressure holds.
    last_zero_grant: Option<Instant>,
    /// EWMA health baselining (None when `HealthConfig::enabled` is off).
    health: Option<HealthMonitor>,
    /// Next health-sampling deadline; armed iff `health` is Some.
    health_next_fire: Option<Instant>,
    /// Counter snapshot at the previous health sample (delta signals).
    health_last: PerfCounters,
    /// Cached `config.health.enabled`, tested per upstream packet for the
    /// arrival-gap tracking.
    health_on: bool,
    /// Largest wave-merge arrival gap since the previous health sample,
    /// and the child whose packet came last (the straggler).
    max_merge_gap_us: u64,
    max_merge_gap_from: u32,
    /// Armed while an incident stream is open: flight-recorder captures
    /// self-inject here.
    incident_stream: Option<StreamId>,
    /// Local capture sequence — the low half of the incident id.
    incident_seq: u64,
    /// Counter snapshot at the previous capture (bundle counter deltas).
    incident_last: PerfCounters,
    /// Last health-warning-triggered capture, enforcing the cooldown.
    /// Failure-triggered captures are exempt (see `record_incident`).
    last_incident: Option<Instant>,
    role: ProcessRole,
}

/// What a successful send cost, for perf accounting.
pub(crate) struct SendStats {
    /// On-wire bytes (or the equivalent size hint for zero-copy frames).
    pub wire_bytes: usize,
    /// True iff this send performed the envelope's one serialization.
    pub fresh_encode: bool,
}

/// Send one envelope over a link, using the zero-copy path when available.
/// Wire links share the envelope's cached encoding: a multicast to N such
/// links serializes the message exactly once.
pub(crate) fn send_message(link: &Arc<dyn Link>, env: &Arc<Envelope>) -> Result<SendStats> {
    let (frame, stats) = if link.needs_bytes() {
        let (bytes, fresh) = env.encoded();
        (
            Frame::Bytes(Arc::clone(bytes)),
            SendStats {
                wire_bytes: bytes.len(),
                fresh_encode: fresh,
            },
        )
    } else {
        let size_hint = env.encoded_len();
        (
            Frame::Shared {
                data: env.clone(),
                size_hint,
            },
            SendStats {
                wire_bytes: size_hint,
                fresh_encode: false,
            },
        )
    };
    link.send(frame).map_err(TbonError::Transport)?;
    Ok(stats)
}

/// Recover an envelope from an incoming frame. Byte frames seed the
/// envelope's encoding memo, so forwarding them costs no re-serialization.
pub(crate) fn decode_frame(frame: Frame) -> Result<Arc<Envelope>> {
    match frame {
        Frame::Bytes(bytes) => {
            let msg = decode_message(&bytes)?;
            Ok(Arc::new(Envelope::from_wire(msg, bytes)))
        }
        Frame::Shared { data, .. } => data
            .downcast::<Envelope>()
            .map_err(|_| TbonError::Decode("shared frame is not an Envelope".into())),
    }
}

/// Wrap a message for sending.
pub(crate) fn envelope(msg: Message) -> Arc<Envelope> {
    Arc::new(Envelope::new(msg))
}

/// If `waves` were just released, consume the stream's accumulated
/// child-merge attribution: `(trace, first_us, last_us, last_from)`.
fn take_merge_span(st: &mut StreamState, waves: &[Vec<Packet>]) -> Option<(u64, u64, u64, u32)> {
    if waves.is_empty() || st.merge_trace == 0 {
        return None;
    }
    let m = (
        st.merge_trace,
        st.merge_first_us,
        st.merge_last_us,
        st.merge_last_from,
    );
    st.merge_trace = 0;
    Some(m)
}

/// If `waves` were just released, consume the stream's unconditional
/// arrival-gap tracking: `(first-to-last gap in µs, straggler rank)`.
fn take_health_gap(st: &mut StreamState, waves: &[Vec<Packet>]) -> Option<(u64, u32)> {
    if waves.is_empty() {
        return None;
    }
    let first = st.gap_first.take()?;
    let last = st.gap_last.take()?;
    Some((
        last.saturating_duration_since(first).as_micros() as u64,
        st.gap_last_from,
    ))
}

/// Build the health-scoring state [`crate::config::HealthConfig`] asks for.
fn new_health(config: &NetworkConfig) -> (Option<HealthMonitor>, Option<Instant>) {
    if !config.health.enabled {
        return (None, None);
    }
    (
        Some(HealthMonitor::new(
            config.health.warn_ratio,
            config.health.warmup_samples,
            config.health.min_warning_gap.as_micros() as u64,
        )),
        Some(Instant::now() + config.health.check_interval),
    )
}

impl CommProcess {
    pub(crate) fn new_internal(
        rank: Rank,
        parent: Rank,
        endpoint: NodeEndpoint,
        topology: Arc<RwLock<Topology>>,
        registry: Arc<FilterRegistry>,
        config: NetworkConfig,
    ) -> CommProcess {
        let pool = FilterPool::new(config.filter_pool, &config.name, rank);
        let spans = SpanRing::new(config.trace.ring_capacity);
        let (health, health_next_fire) = new_health(&config);
        let health_on = config.health.enabled;
        CommProcess {
            rank,
            endpoint,
            topology,
            registry,
            config,
            streams: HashMap::new(),
            dead_children: HashSet::new(),
            shutting_down: false,
            shutdown_pending: HashSet::new(),
            filter_probes: HashMap::new(),
            orphaned_until: None,
            perf: PerfCounters::default(),
            failed_sends_reported: HashSet::new(),
            wave_latency_interval: LogHistogram::new(),
            wave_latency_by_stream: HashMap::new(),
            filter_exec_interval: LogHistogram::new(),
            executor_wait_interval: LogHistogram::new(),
            pool,
            pool_in_flight: 0,
            events: EventRing::new(EVENT_RING_CAP),
            metrics: None,
            trace_pub: None,
            spans,
            lost_leaf_streams: HashMap::new(),
            flow: HashMap::new(),
            parked_by_stream: HashMap::new(),
            held_waves: HashMap::new(),
            consumed_frames: 0,
            consumed_bytes: 0,
            last_zero_grant: None,
            health,
            health_next_fire,
            health_last: PerfCounters::default(),
            health_on,
            max_merge_gap_us: 0,
            max_merge_gap_from: 0,
            incident_stream: None,
            incident_seq: 0,
            incident_last: PerfCounters::default(),
            last_incident: None,
            role: ProcessRole::Internal { parent },
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new_root(
        endpoint: NodeEndpoint,
        topology: Arc<RwLock<Topology>>,
        registry: Arc<FilterRegistry>,
        config: NetworkConfig,
        fe_cmd: Receiver<FeCommand>,
        fe_events: Sender<NetEvent>,
    ) -> CommProcess {
        let pool = FilterPool::new(config.filter_pool, &config.name, Rank(0));
        let spans = SpanRing::new(config.trace.ring_capacity);
        let (health, health_next_fire) = new_health(&config);
        let health_on = config.health.enabled;
        CommProcess {
            rank: Rank(0),
            endpoint,
            topology,
            registry,
            config,
            streams: HashMap::new(),
            dead_children: HashSet::new(),
            shutting_down: false,
            shutdown_pending: HashSet::new(),
            filter_probes: HashMap::new(),
            orphaned_until: None,
            perf: PerfCounters::default(),
            failed_sends_reported: HashSet::new(),
            wave_latency_interval: LogHistogram::new(),
            wave_latency_by_stream: HashMap::new(),
            filter_exec_interval: LogHistogram::new(),
            executor_wait_interval: LogHistogram::new(),
            pool,
            pool_in_flight: 0,
            events: EventRing::new(EVENT_RING_CAP),
            metrics: None,
            trace_pub: None,
            spans,
            lost_leaf_streams: HashMap::new(),
            flow: HashMap::new(),
            parked_by_stream: HashMap::new(),
            held_waves: HashMap::new(),
            consumed_frames: 0,
            consumed_bytes: 0,
            last_zero_grant: None,
            health,
            health_next_fire,
            health_last: PerfCounters::default(),
            health_on,
            max_merge_gap_us: 0,
            max_merge_gap_from: 0,
            incident_stream: None,
            incident_seq: 0,
            incident_last: PerfCounters::default(),
            last_incident: None,
            role: ProcessRole::Root {
                fe_cmd,
                fe_events,
                fe_streams: HashMap::new(),
                next_stream: 1,
                shutdown_reply: None,
                filter_replies: HashMap::new(),
            },
        }
    }

    fn is_root(&self) -> bool {
        matches!(self.role, ProcessRole::Root { .. })
    }

    /// True for streams belonging to the telemetry plane itself (the
    /// metrics or trace stream): their waves are excluded from the perf
    /// counters and never record spans, so the plane cannot perturb what
    /// it measures.
    fn is_telemetry_stream(&self, stream: StreamId) -> bool {
        self.metrics.as_ref().is_some_and(|m| m.stream == stream)
            || self.trace_pub.as_ref().is_some_and(|t| t.stream == stream)
            || self.incident_stream == Some(stream)
    }

    /// Record a trace span with an explicit duration. No-op for untraced
    /// waves or when tracing is disabled. Start and duration are this
    /// process's own clock only — span times are never compared across
    /// processes (see DESIGN.md §12).
    fn span_dur(
        &mut self,
        trace: u64,
        stream: StreamId,
        stage: TraceStage,
        start_us: u64,
        dur_us: u64,
        detail: u64,
    ) {
        if trace == 0 || !self.config.trace.enabled() {
            return;
        }
        self.spans.push(TraceSpan {
            trace,
            rank: self.rank.0,
            stream: stream.0,
            stage,
            start_us,
            dur_us,
            detail,
        });
    }

    /// Record a trace span that started at `start_us` and ends now.
    fn span_since(
        &mut self,
        trace: u64,
        stream: StreamId,
        stage: TraceStage,
        start_us: u64,
        detail: u64,
    ) {
        let dur_us = now_us().saturating_sub(start_us);
        self.span_dur(trace, stream, stage, start_us, dur_us, detail);
    }

    /// Children of this node in the current topology, excluding known-dead.
    fn live_children(&self) -> Vec<Rank> {
        let topo = self.topology.read();
        topo.children(NodeId(self.rank.0))
            .iter()
            .map(|&c| Rank(c))
            .filter(|c| !self.dead_children.contains(c))
            .collect()
    }

    /// Children that are themselves communication processes.
    fn comm_children(&self) -> Vec<Rank> {
        let topo = self.topology.read();
        topo.children(NodeId(self.rank.0))
            .iter()
            .map(|&c| Rank(c))
            .filter(|c| !self.dead_children.contains(c))
            .filter(|c| topo.role(NodeId(c.0)) == Role::Internal)
            .collect()
    }

    fn link_to(&self, peer: Rank) -> Result<Arc<dyn Link>> {
        self.endpoint.peers.get(peer.0).ok_or(TbonError::Transport(
            tbon_transport::TransportError::UnknownPeer(peer.0),
        ))
    }

    /// Send an envelope to a peer, bumping the activity counters on success.
    fn send_to(&mut self, peer: Rank, env: &Arc<Envelope>) -> Result<()> {
        let link = self.link_to(peer)?;
        let stats = send_message(&link, env)?;
        self.perf.frames_sent += 1;
        self.perf.bytes_sent += stats.wire_bytes as u64;
        if stats.fresh_encode {
            self.perf.encodes_performed += 1;
        }
        Ok(())
    }

    /// Like [`CommProcess::send_to`], but a failure is recorded instead of
    /// silently discarded: the drop counter always moves, and the first
    /// failure per peer raises [`NetEvent::SendFailed`] toward the
    /// front-end. Used on child-facing paths (the parent-facing paths must
    /// not recurse through `emit_event`).
    fn send_to_noted(&mut self, peer: Rank, env: &Arc<Envelope>) -> Result<()> {
        match self.send_to(peer, env) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.perf.sends_dropped += 1;
                if self.failed_sends_reported.insert(peer) {
                    let rank = self.rank;
                    self.emit_event(NetEvent::SendFailed { rank, peer });
                }
                Err(e)
            }
        }
    }

    /// Send an event toward the front-end, recording it in the local event
    /// ring first. Relays of children's events go through
    /// [`CommProcess::forward_event`] so each event is logged exactly once,
    /// at the process that observed it.
    fn emit_event(&mut self, ev: NetEvent) {
        let (kind, detail) = match &ev {
            NetEvent::BackendLost { rank, .. } => ("backend_lost", rank.to_string()),
            NetEvent::BackendJoined { rank, parent } => {
                ("backend_joined", format!("{rank} under {parent}"))
            }
            NetEvent::SubtreeOrphaned { rank, .. } => ("subtree_orphaned", rank.to_string()),
            NetEvent::FilterError { detail, .. } => ("filter_error", detail.clone()),
            NetEvent::SendFailed { peer, .. } => ("send_failed", peer.to_string()),
            // Supervisor verdicts originate above the tree; processes only
            // relay them (forward_event), never emit them.
            NetEvent::Healed { rank, .. } => ("healed", rank.to_string()),
            NetEvent::Degraded { rank, detail } => ("degraded", format!("{rank}: {detail}")),
            NetEvent::HealthWarning {
                subject,
                signal,
                value,
                baseline,
                ..
            } => (
                "health_warning",
                format!(
                    "{subject}: {} {value} vs baseline {baseline}",
                    HealthSignal::from_code(*signal).map_or("?", |s| s.name())
                ),
            ),
        };
        self.events.push(kind, detail);
        self.forward_event(ev);
    }

    /// Pass an event toward the front-end without logging it locally.
    fn forward_event(&mut self, ev: NetEvent) {
        match &mut self.role {
            ProcessRole::Root { fe_events, .. } => {
                let _ = fe_events.send(ev);
            }
            ProcessRole::Internal { parent } => {
                let parent = *parent;
                let msg = envelope(Message::Event(ev));
                let _ = self.send_to(parent, &msg);
            }
        }
    }

    /// Deliver filtered output toward the front-end: up to the parent on
    /// internal nodes, into the per-stream channel at the root. At the
    /// root, stamped packets resolve into end-to-end wave latency here.
    fn emit_up(&mut self, pkt: Packet) {
        // A forwarded incident batch gains this process's own view of the
        // same incident — the front end then sees the failure from both
        // sides of the link.
        let pkt = if self.incident_stream == Some(pkt.stream()) && !self.is_root() {
            self.append_neighbor_view(pkt)
        } else {
            pkt
        };
        match &mut self.role {
            ProcessRole::Root { fe_streams, .. } => {
                let stamp = pkt.stamp_us();
                if stamp > 0 {
                    let latency = now_us().saturating_sub(stamp);
                    self.wave_latency_interval.record(latency);
                    self.wave_latency_by_stream
                        .entry(pkt.stream())
                        .or_default()
                        .record(latency);
                }
                if let Some(tx) = fe_streams.get(&pkt.stream()) {
                    // The application may have dropped the handle; fine.
                    let _ = tx.send(pkt);
                }
            }
            ProcessRole::Internal { parent } => {
                let parent = *parent;
                let trace = pkt.trace_id();
                let stream = pkt.stream();
                let t0 = now_us();
                let msg = envelope(Message::up_from_packet(&pkt));
                if self.send_to(parent, &msg).is_err() {
                    // Parent gone; the Disconnected delivery will follow.
                }
                self.span_since(trace, stream, TraceStage::UpstreamSend, t0, 0);
            }
        }
    }

    /// Route a downstream packet to the children hosting stream members,
    /// applying the per-hop downstream filter first if configured.
    fn send_down_packet(&mut self, stream_id: StreamId, pkt: Packet) {
        let Some(st) = self.streams.get_mut(&stream_id) else {
            return;
        };
        let mut outputs = vec![pkt];
        let mut reverse = Vec::new();
        if let Some(df) = st.dfilter.as_mut() {
            let mut ctx = FilterContext::new(stream_id, self.rank, false, st.expected.len());
            match df.transform(outputs, &mut ctx) {
                Ok(out) => {
                    outputs = out;
                    if st.mode == StreamMode::Bidirectional {
                        reverse = std::mem::take(&mut ctx.reverse);
                    }
                }
                Err(e) => {
                    let rank = self.rank;
                    self.emit_event(NetEvent::FilterError {
                        rank,
                        detail: format!("downstream filter on {stream_id}: {e}"),
                    });
                    return;
                }
            }
        }
        let routes = self.streams[&stream_id].down_routes.clone();
        let flow_on = self.config.flow.enabled();
        let mut failed: Vec<Rank> = Vec::new();
        for pkt in &outputs {
            // One envelope per packet: the first wire child serializes it,
            // every further child shares the same bytes.
            let t0 = now_us();
            let msg = envelope(Message::down_from_packet(pkt));
            for child in &routes {
                if failed.contains(child) {
                    continue;
                }
                let child_gone = if flow_on {
                    // Credit window: a slow child pauses (frame parks until
                    // it grants) instead of dying; only a severed link — or
                    // a window silent past the grant deadline, handled in
                    // fire_deadlines — is a failure.
                    self.flow_send_down(stream_id, *child, &msg)
                } else {
                    // Legacy path: a child that blew its send deadline (or
                    // whose link died) is declared gone now rather than on
                    // the eventual disconnect, so one slow subscriber never
                    // wedges the stream for its siblings.
                    matches!(
                        self.send_to_noted(*child, &msg),
                        Err(TbonError::Transport(
                            TransportError::Backpressure(_) | TransportError::Closed(_),
                        ))
                    )
                };
                if child_gone {
                    failed.push(*child);
                }
            }
            // Time spent handing this packet to the writer plane (encode
            // plus per-child enqueue, or the park decision under flow).
            self.span_since(pkt.trace_id(), stream_id, TraceStage::WriterQueue, t0, 0);
        }
        for child in failed {
            self.handle_child_failure(child);
        }
        for pkt in reverse {
            self.emit_up(pkt);
        }
    }

    /// Downstream data send under flow control. Spends window credit and
    /// sends, or parks the frame behind the closed window. Returns true iff
    /// the child's link is actually gone and it must be declared failed —
    /// backpressure and an exhausted window are pauses, not verdicts.
    fn flow_send_down(&mut self, stream_id: StreamId, child: Rank, env: &Arc<Envelope>) -> bool {
        let cfg = self.config.flow;
        // Charge at most the whole byte window per frame: an oversized frame
        // costs everything but still fits through a fully open window.
        let len = (env.encoded_len() as u64).min(cfg.effective_window_bytes());
        let must_park = {
            let fl = self
                .flow
                .entry(child)
                .or_insert_with(|| ChildFlow::open(cfg));
            // FIFO: once anything is parked, everything behind it parks too.
            if !fl.pending.is_empty() || fl.credit_frames == 0 || fl.credit_bytes < len {
                true
            } else {
                fl.credit_frames -= 1;
                fl.credit_bytes -= len;
                false
            }
        };
        if must_park {
            self.park_down_frame(stream_id, child, Arc::clone(env), len);
            return false;
        }
        match self.send_to(child, env) {
            Ok(()) => false,
            Err(TbonError::Transport(TransportError::Backpressure(_))) => {
                // The transport's own queue is full: transient. Refund the
                // credit (nothing was transmitted) and park the frame.
                if let Some(fl) = self.flow.get_mut(&child) {
                    fl.credit_frames += 1;
                    fl.credit_bytes += len;
                }
                self.park_down_frame(stream_id, child, Arc::clone(env), len);
                false
            }
            Err(_) => {
                self.perf.sends_dropped += 1;
                if self.failed_sends_reported.insert(child) {
                    let rank = self.rank;
                    self.emit_event(NetEvent::SendFailed { rank, peer: child });
                }
                true
            }
        }
    }

    /// Park a downstream frame behind `child`'s closed window and pause
    /// wave admission for its stream.
    fn park_down_frame(&mut self, stream_id: StreamId, child: Rank, env: Arc<Envelope>, len: u64) {
        let cfg = self.config.flow;
        let fl = self
            .flow
            .entry(child)
            .or_insert_with(|| ChildFlow::open(cfg));
        fl.closed_since.get_or_insert_with(Instant::now);
        fl.pending.push_back((stream_id, env, len, now_us()));
        *self.parked_by_stream.entry(stream_id).or_insert(0) += 1;
        self.perf.window_closed += 1;
    }

    /// A parked frame left `child`'s backlog (sent or abandoned): drop its
    /// admission hold, collecting streams whose last parked frame it was.
    fn note_unparked(&mut self, stream_id: StreamId, reopened: &mut Vec<StreamId>) {
        if let Some(n) = self.parked_by_stream.get_mut(&stream_id) {
            *n -= 1;
            if *n == 0 {
                self.parked_by_stream.remove(&stream_id);
                reopened.push(stream_id);
            }
        }
    }

    /// Credits came back from `child`: refresh its liveness clock, account
    /// the stalled time, and retry its parked backlog in order.
    fn handle_credit_grant(&mut self, from: Rank, frames: u64, bytes: u64) {
        if !self.config.flow.enabled() {
            return;
        }
        let cfg = self.config.flow;
        let Some(fl) = self.flow.get_mut(&from) else {
            // A grant from a peer we never sent data to (or one already
            // declared dead): stale, ignore.
            return;
        };
        // Cap at the window so duplicated or post-adoption grants can
        // never inflate outstanding capacity beyond the configured bound.
        fl.credit_frames = fl
            .credit_frames
            .saturating_add(frames)
            .min(cfg.window_frames);
        fl.credit_bytes = fl
            .credit_bytes
            .saturating_add(bytes)
            .min(cfg.effective_window_bytes());
        // The grant is proof of life: account the closed stretch so far and
        // restart the silence clock (flush_pending clears it if the backlog
        // drains completely).
        if let Some(t) = fl.closed_since.take() {
            self.perf.credits_stalled_us += t.elapsed().as_micros() as u64;
            if !fl.pending.is_empty() {
                fl.closed_since = Some(Instant::now());
            }
        }
        self.flush_pending(from);
    }

    /// Send as much of `child`'s parked backlog as its window now allows;
    /// reopen wave admission for streams whose backlog fully drained, and
    /// pass any freed pressure upstream as a grant of our own.
    fn flush_pending(&mut self, child: Rank) {
        let mut reopened: Vec<StreamId> = Vec::new();
        let mut child_gone = false;
        loop {
            let (stream_id, env, len, parked_at) = {
                let Some(fl) = self.flow.get_mut(&child) else {
                    break;
                };
                let Some((_, _, len, _)) = fl.pending.front() else {
                    fl.closed_since = None;
                    break;
                };
                if fl.credit_frames == 0 || fl.credit_bytes < *len {
                    break;
                }
                let (s, e, l, p) = fl.pending.pop_front().expect("front checked");
                fl.credit_frames -= 1;
                fl.credit_bytes -= l;
                (s, e, l, p)
            };
            match self.send_to(child, &env) {
                Ok(()) => {
                    // A traced frame that waited behind the closed window:
                    // park-to-flush is the credit-stall attribution, charged
                    // to the child that was slow to grant.
                    if let Message::Down { trace, .. } = env.msg() {
                        let trace = *trace;
                        self.span_since(
                            trace,
                            stream_id,
                            TraceStage::CreditPark,
                            parked_at,
                            child.0 as u64,
                        );
                    }
                    self.note_unparked(stream_id, &mut reopened)
                }
                Err(TbonError::Transport(TransportError::Backpressure(_))) => {
                    // Transport queue still full: refund and put it back.
                    if let Some(fl) = self.flow.get_mut(&child) {
                        fl.credit_frames += 1;
                        fl.credit_bytes += len;
                        fl.pending.push_front((stream_id, env, len, parked_at));
                    }
                    break;
                }
                Err(_) => {
                    self.perf.sends_dropped += 1;
                    self.note_unparked(stream_id, &mut reopened);
                    child_gone = true;
                    break;
                }
            }
        }
        self.release_held_waves(reopened);
        if child_gone {
            self.handle_child_failure(child);
        }
        self.maybe_send_grant();
    }

    /// Re-admit waves held while their stream's downstream window was
    /// closed, oldest first.
    fn release_held_waves(&mut self, streams: Vec<StreamId>) {
        for stream_id in streams {
            if let Some(waves) = self.held_waves.remove(&stream_id) {
                self.process_waves(stream_id, waves);
            }
        }
    }

    /// Forget a dead child's window: abandon its backlog (reopening wave
    /// admission where it held the last parked frame) and let any deferred
    /// grant of ours finally travel upstream.
    fn drop_flow_state(&mut self, child: Rank) {
        let Some(fl) = self.flow.remove(&child) else {
            return;
        };
        if let Some(t) = fl.closed_since {
            self.perf.credits_stalled_us += t.elapsed().as_micros() as u64;
        }
        let mut reopened: Vec<StreamId> = Vec::new();
        for (stream_id, _, _, _) in fl.pending {
            self.note_unparked(stream_id, &mut reopened);
        }
        self.release_held_waves(reopened);
        self.maybe_send_grant();
    }

    /// Return consumed downstream credit to the parent once the watermark
    /// is reached — but not while any of our own child windows has a parked
    /// backlog: withholding the grant closes the parent's window toward us
    /// in turn, which is how pressure from a slow leaf climbs the tree hop
    /// by hop. While deferring, a periodic *zero-credit* grant keeps
    /// flowing instead: it refreshes the parent's silence clock (deferral
    /// is pressure, not death) without returning any capacity.
    fn maybe_send_grant(&mut self) {
        if !self.config.flow.enabled() {
            return;
        }
        let parent = match &self.role {
            ProcessRole::Internal { parent } => *parent,
            ProcessRole::Root { .. } => return,
        };
        if self.flow.values().any(|f| !f.pending.is_empty()) {
            let now = Instant::now();
            let period = self.grant_deadline() / 4;
            let due = self
                .last_zero_grant
                .is_none_or(|t| now.duration_since(t) >= period);
            if due {
                let msg = envelope(Message::CreditGrant {
                    frames: 0,
                    bytes: 0,
                });
                let _ = self.send_to(parent, &msg);
                self.last_zero_grant = Some(now);
            }
            return;
        }
        self.last_zero_grant = None;
        if self.consumed_frames == 0
            || self.consumed_frames < self.config.flow.effective_watermark()
        {
            return;
        }
        let msg = envelope(Message::CreditGrant {
            frames: self.consumed_frames,
            bytes: self.consumed_bytes,
        });
        self.consumed_frames = 0;
        self.consumed_bytes = 0;
        if self.send_to(parent, &msg).is_ok() {
            self.perf.grants_sent += 1;
        }
    }

    /// How long a closed window may stay silent (no grants at all) before
    /// the child is handed to the failure detector. The supervisor's ack
    /// timeout when one is armed — recovery owns liveness then — else the
    /// writer send deadline, the knob that bounded slow-peer patience
    /// before flow control existed.
    fn grant_deadline(&self) -> Duration {
        self.config
            .supervisor
            .as_ref()
            .map(|p| p.ack_timeout)
            .unwrap_or(self.config.writer_send_deadline)
    }

    /// Hand freshly released waves to the execution plane: pooled when the
    /// pool is enabled and the wave is worth two thread hops, inline
    /// otherwise. Inline execution is only taken when the stream has
    /// nothing in the pool, so per-stream wave order is preserved either
    /// way; pooled outputs come back through the event loop's `select!` and
    /// are applied by [`CommProcess::apply_wave_output`].
    fn process_waves(&mut self, stream_id: StreamId, waves: Vec<Vec<Packet>>) {
        if waves.is_empty() {
            return;
        }
        // Admission pause: while this stream has downstream frames parked
        // behind a closed credit window, hold freshly released waves
        // instead of executing them — executing would only pile more
        // output onto the backlog. They re-enter (in order) through
        // release_held_waves once the slowest child drains.
        if self.parked_by_stream.contains_key(&stream_id) {
            self.held_waves.entry(stream_id).or_default().extend(waves);
            return;
        }
        let is_root = self.is_root();
        let rank = self.rank;
        // The telemetry plane must not perturb what it measures: waves and
        // filter work on the metrics and trace streams themselves are
        // excluded from the counters (frames/bytes stay inclusive — they
        // are wire truth).
        let is_metrics = self.is_telemetry_stream(stream_id);
        let pool_enabled = self.pool.enabled();
        let inline_below = self.pool.inline_below_bytes();
        let mut done: Vec<WaveOutput> = Vec::new();
        {
            let Some(st) = self.streams.get_mut(&stream_id) else {
                return;
            };
            for wave in waves {
                if !is_metrics {
                    self.perf.waves += 1;
                }
                // Earliest injection stamp in the wave: back-filled onto
                // unstamped filter outputs so latency survives reduction.
                let wave_stamp = wave
                    .iter()
                    .map(|p| p.stamp_us())
                    .filter(|&s| s > 0)
                    .min()
                    .unwrap_or(0);
                // Canonical trace id for the wave: the minimum nonzero id,
                // so every process that merges (part of) this wave picks
                // the same one deterministically.
                let wave_trace = wave
                    .iter()
                    .map(|p| p.trace_id())
                    .filter(|&t| t > 0)
                    .min()
                    .unwrap_or(0);
                let wave_bytes: usize = wave.iter().map(|p| p.value().encoded_len()).sum();
                let pooled = pool_enabled && (st.in_flight > 0 || wave_bytes >= inline_below);
                let job = FilterJob {
                    stream: stream_id,
                    filter: Arc::clone(&st.tfilter),
                    wave,
                    rank,
                    is_root,
                    contributing: st.expected.len(),
                    wave_stamp,
                    wave_trace,
                    is_metrics,
                    bidirectional: st.mode == StreamMode::Bidirectional,
                    pooled,
                    enqueued: Instant::now(),
                };
                if pooled {
                    match self.pool.submit(job) {
                        None => {
                            st.in_flight += 1;
                            self.pool_in_flight += 1;
                        }
                        // Worker died (panicking filter): the wave ran
                        // inline instead; nothing entered the queue.
                        Some(out) => done.push(out),
                    }
                } else {
                    done.push(execute(job));
                }
            }
        }
        for out in done {
            self.apply_wave_output(out);
        }
    }

    /// Fold one executed wave's results back into the process: perf
    /// accounting, in-flight bookkeeping, and output dispatch.
    fn apply_wave_output(&mut self, out: WaveOutput) {
        let rank = self.rank;
        let stream_id = out.stream;
        if out.pooled {
            self.pool_in_flight = self.pool_in_flight.saturating_sub(1);
            if let Some(st) = self.streams.get_mut(&stream_id) {
                st.in_flight = st.in_flight.saturating_sub(1);
            }
            if !out.is_metrics {
                self.executor_wait_interval.record(out.queue_wait_ns);
            }
        }
        if !out.is_metrics {
            self.perf.waves_executed += 1;
            self.perf.filter_ns += out.transform_ns;
            self.perf.filter_busy_us += out.transform_ns / 1_000;
            self.perf.filter_out += out.outputs.len() as u64;
            self.filter_exec_interval.record(out.transform_ns);
        }
        // Executor attribution for sampled waves. Start times are
        // reconstructed backwards from now (end − duration): only the
        // durations are load-bearing, and both measurements were taken on
        // this process's clock inside the executor.
        if out.wave_trace != 0 {
            let end = now_us();
            let exec_us = out.transform_ns / 1_000;
            if out.pooled {
                let wait_us = out.queue_wait_ns / 1_000;
                self.span_dur(
                    out.wave_trace,
                    stream_id,
                    TraceStage::ExecutorQueue,
                    end.saturating_sub(exec_us + wait_us),
                    wait_us,
                    0,
                );
            }
            self.span_dur(
                out.wave_trace,
                stream_id,
                TraceStage::FilterExec,
                end.saturating_sub(exec_us),
                exec_us,
                0,
            );
        }
        for pkt in out.outputs {
            self.emit_up(pkt);
        }
        for pkt in out.reverse {
            self.send_down_packet(stream_id, pkt);
        }
        if let Some(detail) = out.error {
            self.emit_event(NetEvent::FilterError {
                rank,
                detail: format!("transformation on {stream_id}: {detail}"),
            });
        }
    }

    /// Apply every wave still in the pool before shutdown concludes, bounded
    /// by the shutdown timeout so a wedged filter cannot hold the tree open.
    fn drain_pool(&mut self) {
        let deadline = Instant::now() + self.config.shutdown_timeout;
        while self.pool_in_flight > 0 {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match self.pool.recv_result_timeout(deadline - now) {
                Some(out) => self.apply_wave_output(out),
                None => break,
            }
        }
    }

    /// Upstream data from a child.
    #[allow(clippy::too_many_arguments)]
    fn handle_up(
        &mut self,
        from: Rank,
        stream_id: StreamId,
        tag: Tag,
        origin: Rank,
        sent_us: u64,
        trace: u64,
        value: DataValue,
    ) {
        let now = Instant::now();
        let tracing = self.config.trace.enabled();
        let track_gap = self.health_on && !self.is_telemetry_stream(stream_id);
        let (waves, merge, gap) = {
            let Some(st) = self.streams.get_mut(&stream_id) else {
                // Stream closed or unknown: drop (paper model has no nack).
                return;
            };
            let pkt = Packet::traced(stream_id, tag, origin, sent_us, trace, value);
            if tracing && trace != 0 {
                let t = now_us();
                if st.merge_trace == 0 {
                    st.merge_first_us = t;
                    st.merge_trace = trace;
                } else {
                    st.merge_trace = st.merge_trace.min(trace);
                }
                st.merge_last_us = t;
                st.merge_last_from = from.0;
            }
            if track_gap {
                if st.gap_first.is_none() {
                    st.gap_first = Some(now);
                }
                st.gap_last = Some(now);
                st.gap_last_from = from.0;
            }
            let ctx = SyncContext {
                stream: stream_id,
                rank: self.rank,
                expected: st.expected.clone(),
                now,
            };
            let waves = st.sync.push(from, pkt, &ctx);
            let merge = take_merge_span(st, &waves);
            let gap = take_health_gap(st, &waves);
            (waves, merge, gap)
        };
        self.note_merge_gap(gap);
        if let Some((trace, first, last, last_from)) = merge {
            // The sync filter just released waves: first-to-last traced
            // arrival is the child-merge wait, charged to the child whose
            // packet came last (the straggler).
            self.span_dur(
                trace,
                stream_id,
                TraceStage::ChildMerge,
                first,
                last.saturating_sub(first),
                last_from as u64,
            );
        }
        self.process_waves(stream_id, waves);
    }

    /// Instantiate and register a stream at this process, and forward the
    /// creation message toward member subtrees.
    fn handle_new_stream(&mut self, msg: &Arc<Envelope>) {
        let Message::NewStream {
            stream,
            members,
            transformation,
            params,
            sync_name,
            sync_params,
            downstream_filter,
            downstream_params,
            mode,
        } = msg.msg()
        else {
            unreachable!("caller matched NewStream");
        };
        let stream_id = *stream;
        // A stream whose members include this communication process is a
        // telemetry stream: we contribute samples ourselves, so our own
        // rank joins `expected` and a periodic publisher is armed.
        let self_member = members.contains(&self.rank);
        // Which children lead to members?
        let buckets = {
            let topo = self.topology.read();
            let node_members: Vec<NodeId> = members.iter().map(|r| NodeId(r.0)).collect();
            topo.route(NodeId(self.rank.0), &node_members)
        };
        let routes: Vec<Rank> = buckets
            .iter()
            .map(|(c, _)| Rank(c.0))
            .filter(|c| !self.dead_children.contains(c))
            .collect();

        let tfilter = self.registry.create_transformation(transformation, params);
        let sync = self.registry.create_synchronization(sync_name, sync_params);
        let dfilter = match downstream_filter {
            Some(name) => match self.registry.create_transformation(name, downstream_params) {
                Ok(f) => Ok(Some(f)),
                Err(e) => Err(e),
            },
            None => Ok(None),
        };
        match (tfilter, sync, dfilter) {
            (Ok(tfilter), Ok(sync), Ok(dfilter)) => {
                let mut expected = routes.clone();
                if self_member {
                    expected.push(self.rank);
                }
                self.streams.insert(
                    stream_id,
                    StreamState {
                        members: members.clone(),
                        expected,
                        down_routes: routes.clone(),
                        sync,
                        tfilter: Arc::new(Mutex::new(tfilter)),
                        dfilter,
                        mode: *mode,
                        in_flight: 0,
                        merge_trace: 0,
                        merge_first_us: 0,
                        merge_last_us: 0,
                        merge_last_from: 0,
                        gap_first: None,
                        gap_last: None,
                        gap_last_from: 0,
                    },
                );
                self.events.push("stream_open", stream_id.to_string());
                if self_member {
                    let interval_us = params.as_u64().filter(|v| *v > 0).unwrap_or(1_000_000);
                    let interval = Duration::from_micros(interval_us);
                    if transformation == TRACE_FILTER {
                        self.trace_pub = Some(TracePublisher {
                            stream: stream_id,
                            interval,
                            next_fire: Instant::now() + interval,
                            seq: 0,
                        });
                        self.events.push("trace_open", format!("{interval:?}"));
                    } else if transformation == INCIDENT_FILTER {
                        // The incident stream has no periodic publisher:
                        // captures self-inject on trigger.
                        self.incident_stream = Some(stream_id);
                        self.events.push("incident_open", stream_id.to_string());
                    } else {
                        self.metrics = Some(MetricsPublisher {
                            stream: stream_id,
                            interval,
                            next_fire: Instant::now() + interval,
                            seq: 0,
                            last: self.perf,
                        });
                        self.events.push("metrics_open", format!("{interval:?}"));
                    }
                }
            }
            (t, s, d) => {
                let detail = [
                    t.err().map(|e| e.to_string()),
                    s.err().map(|e| e.to_string()),
                    d.err().map(|e| e.to_string()),
                ]
                .into_iter()
                .flatten()
                .collect::<Vec<_>>()
                .join("; ");
                let rank = self.rank;
                self.emit_event(NetEvent::FilterError { rank, detail });
                return;
            }
        }
        // Forward the identical message to each involved child (FIFO links
        // guarantee it precedes any data we send on this stream).
        for child in routes {
            let _ = self.send_to_noted(child, msg);
        }
    }

    fn handle_close_stream(&mut self, msg: &Arc<Envelope>, stream_id: StreamId) {
        if let Some(st) = self.streams.remove(&stream_id) {
            self.events.push("stream_close", stream_id.to_string());
            // Held waves die with the stream; frames already parked behind
            // closed windows still flush on credit (children drop data for
            // streams they no longer know).
            self.held_waves.remove(&stream_id);
            for child in st.down_routes {
                let _ = self.send_to_noted(child, msg);
            }
        }
        if self.metrics.as_ref().is_some_and(|m| m.stream == stream_id) {
            self.metrics = None;
        }
        if self
            .trace_pub
            .as_ref()
            .is_some_and(|t| t.stream == stream_id)
        {
            self.trace_pub = None;
        }
        if self.incident_stream == Some(stream_id) {
            self.incident_stream = None;
        }
        if let ProcessRole::Root { fe_streams, .. } = &mut self.role {
            fe_streams.remove(&stream_id);
        }
    }

    /// Begin or continue a LoadFilter probe at this node.
    fn handle_load_filter(&mut self, msg: &Arc<Envelope>, name: &str, kind: FilterKind) {
        let self_ok = match kind {
            FilterKind::Transformation => self.registry.has_transformation(name),
            FilterKind::Synchronization => self.registry.has_synchronization(name),
        };
        let kids = self.comm_children();
        if kids.is_empty() {
            self.finish_filter_probe(name.to_owned(), self_ok);
            return;
        }
        self.filter_probes.insert(
            name.to_owned(),
            FilterProbe {
                awaiting: kids.iter().copied().collect(),
                ok: self_ok,
            },
        );
        for child in kids {
            let _ = self.send_to_noted(child, msg);
        }
    }

    fn handle_load_filter_ack(&mut self, name: &str, from: Rank, ok: bool) {
        let done = {
            let Some(probe) = self.filter_probes.get_mut(name) else {
                return;
            };
            probe.awaiting.remove(&from);
            probe.ok &= ok;
            probe.awaiting.is_empty()
        };
        if done {
            let probe = self.filter_probes.remove(name).expect("probe exists");
            self.finish_filter_probe(name.to_owned(), probe.ok);
        }
    }

    /// Report a completed probe up the tree (or to the front-end at root).
    fn finish_filter_probe(&mut self, name: String, ok: bool) {
        match &mut self.role {
            ProcessRole::Root { filter_replies, .. } => {
                if let Some(reply) = filter_replies.remove(&name) {
                    let _ = reply.send(Ok(ok));
                }
            }
            ProcessRole::Internal { parent } => {
                let parent = *parent;
                let msg = envelope(Message::LoadFilterAck { name, ok });
                let _ = self.send_to(parent, &msg);
            }
        }
    }

    /// Propagate Shutdown to children; returns true when this process can
    /// exit immediately (no children to wait for).
    fn begin_shutdown(&mut self) -> bool {
        self.shutting_down = true;
        self.events.push("shutdown", "");
        let kids = self.live_children();
        if kids.is_empty() {
            return true;
        }
        self.shutdown_pending = kids.iter().copied().collect();
        let msg = envelope(Message::Shutdown);
        for child in kids {
            if self.send_to_noted(child, &msg).is_err() {
                self.shutdown_pending.remove(&child);
            }
        }
        self.shutdown_pending.is_empty()
    }

    /// Called when a subtree acks shutdown (or a child dies during one).
    /// Returns true when the whole subtree below us is done.
    fn note_shutdown_ack(&mut self, child: Rank) -> bool {
        self.shutdown_pending.remove(&child);
        self.shutting_down && self.shutdown_pending.is_empty()
    }

    /// Complete this process's part of the shutdown and report upward.
    fn conclude_shutdown(&mut self) {
        // Waves still in the pool carry filter state the application may be
        // waiting on (the last reduction of a stream); finish them first.
        self.drain_pool();
        match &mut self.role {
            ProcessRole::Root { shutdown_reply, .. } => {
                if let Some(reply) = shutdown_reply.take() {
                    let _ = reply.send(Ok(()));
                }
            }
            ProcessRole::Internal { parent } => {
                let parent = *parent;
                let rank = self.rank;
                let msg = envelope(Message::ShutdownAck { rank });
                let _ = self.send_to(parent, &msg);
            }
        }
    }

    /// Handle a lost child: failure notice, sync-filter bookkeeping, and
    /// topology cleanup.
    fn handle_child_failure(&mut self, child: Rank) {
        if self.dead_children.contains(&child) {
            return;
        }
        // Disconnects from nodes that are not (or no longer) our children —
        // a spliced-out ex-parent, the control endpoint — carry no failure
        // information for us.
        let is_child = {
            let topo = self.topology.read();
            topo.children(NodeId(self.rank.0)).contains(&child.0)
        };
        if !is_child && !self.shutting_down {
            return;
        }
        self.dead_children.insert(child);
        self.drop_flow_state(child);

        if self.shutting_down {
            if self.note_shutdown_ack(child) {
                self.conclude_shutdown();
            }
            return;
        }

        let rank = self.rank;
        let child_role = {
            let topo = self.topology.read();
            topo.role(NodeId(child.0))
        };
        let lost_members: Vec<Rank> = if child_role == Role::Internal {
            // A communication process died: its whole subtree is orphaned
            // but alive. Report upward and wait for the front-end to heal
            // (Network::heal_internal_failure splices + reconnects). The
            // topology is updated by the healer, not here, and members
            // below the orphaned subtree keep their stream membership.
            self.emit_event(NetEvent::SubtreeOrphaned {
                rank: child,
                detected_by: rank,
            });
            Vec::new()
        } else {
            // A back-end died: detach it and report the loss.
            {
                let mut topo = self.topology.write();
                let _ = topo.detach_leaf(NodeId(child.0));
            }
            self.emit_event(NetEvent::BackendLost {
                rank: child,
                detected_by: rank,
            });
            vec![child]
        };
        // Flight recorder: a failure-detector verdict always captures
        // (the loss event above is already in the ring, so the bundle
        // carries it).
        self.record_incident(IncidentReason::ChildLost, child, None);

        // Unblock synchronization filters waiting on the dead child.
        let ids: Vec<StreamId> = self.streams.keys().copied().collect();
        let now = Instant::now();
        let mut pruned: Vec<StreamId> = Vec::new();
        let mut was_member_of: Vec<StreamId> = Vec::new();
        for stream_id in ids {
            let waves = {
                let st = self.streams.get_mut(&stream_id).expect("exists");
                if !st.expected.contains(&child) {
                    continue;
                }
                st.expected.retain(|c| *c != child);
                st.down_routes.retain(|c| *c != child);
                if st.members.contains(&child) && lost_members.contains(&child) {
                    was_member_of.push(stream_id);
                }
                st.members.retain(|m| !lost_members.contains(m));
                if st.expected.is_empty() {
                    pruned.push(stream_id);
                }
                let ctx = SyncContext {
                    stream: stream_id,
                    rank,
                    expected: st.expected.clone(),
                    now,
                };
                st.sync.child_gone(child, &ctx)
            };
            self.process_waves(stream_id, waves);
        }
        if !was_member_of.is_empty() {
            self.lost_leaf_streams.insert(child, was_member_of);
        }
        // With no contributors left we can never complete a wave for these
        // streams: tell the parent to stop waiting for us.
        for stream_id in pruned {
            self.send_prune(stream_id);
        }
    }

    /// Tell the parent we no longer contribute to a stream (internal nodes
    /// only; at the root an empty stream simply goes quiet).
    fn send_prune(&mut self, stream_id: StreamId) {
        if let ProcessRole::Internal { parent } = self.role {
            let msg = envelope(Message::StreamPrune { stream: stream_id });
            let _ = self.send_to(parent, &msg);
        }
    }

    /// A child subtree can no longer contribute to `stream`: treat it like
    /// a per-stream failure of that child, cascading upward if we in turn
    /// run out of contributors.
    fn handle_stream_prune(&mut self, from: Rank, stream_id: StreamId) {
        let rank = self.rank;
        let now = Instant::now();
        let mut prune_up = false;
        let waves = {
            let Some(st) = self.streams.get_mut(&stream_id) else {
                return;
            };
            if !st.expected.contains(&from) {
                return;
            }
            st.expected.retain(|c| *c != from);
            // Keep the downstream route: the pruned subtree may still hold
            // live members for multicast? No — a prune means no members
            // remain below, so drop it both ways.
            st.down_routes.retain(|c| *c != from);
            if st.expected.is_empty() {
                prune_up = true;
            }
            let ctx = SyncContext {
                stream: stream_id,
                rank,
                expected: st.expected.clone(),
                now,
            };
            st.sync.child_gone(from, &ctx)
        };
        self.process_waves(stream_id, waves);
        if prune_up {
            self.send_prune(stream_id);
        }
    }

    /// Reconfiguration: adopt a child (the survivor of a spliced-out
    /// communication process) and recompute per-stream routing so its
    /// traffic counts again.
    fn handle_adopt(&mut self, child: Rank) {
        self.dead_children.remove(&child);
        self.events.push("adopt_child", child.to_string());
        // An adopted (or re-adopted) child starts with a fresh, full
        // window: whatever credit state predates the reconfiguration
        // belongs to a link that no longer exists.
        self.drop_flow_state(child);
        // A re-adopted leaf gets its stream memberships back (they were
        // stripped when its loss was detected); the route recompute below
        // then rebuilds expected/down_routes from the restored member sets.
        if let Some(streams) = self.lost_leaf_streams.remove(&child) {
            for stream_id in streams {
                if let Some(st) = self.streams.get_mut(&stream_id) {
                    if !st.members.contains(&child) {
                        st.members.push(child);
                    }
                }
            }
        }
        let rank = self.rank;
        let metrics_stream = self.metrics.as_ref().map(|m| m.stream);
        let trace_stream = self.trace_pub.as_ref().map(|t| t.stream);
        let incident_stream = self.incident_stream;
        let ids: Vec<StreamId> = self.streams.keys().copied().collect();
        let now = Instant::now();
        for stream_id in ids {
            let waves = {
                let st = self.streams.get_mut(&stream_id).expect("exists");
                let buckets = {
                    let topo = self.topology.read();
                    let members: Vec<NodeId> = st.members.iter().map(|r| NodeId(r.0)).collect();
                    topo.route(NodeId(rank.0), &members)
                };
                let mut routes: Vec<Rank> = buckets
                    .iter()
                    .map(|(c, _)| Rank(c.0))
                    .filter(|c| !self.dead_children.contains(c))
                    .collect();
                st.down_routes = routes.clone();
                // On the telemetry streams this process is itself a
                // contributor; the recomputed routes must not evict it.
                if metrics_stream == Some(stream_id)
                    || trace_stream == Some(stream_id)
                    || incident_stream == Some(stream_id)
                {
                    routes.push(rank);
                }
                st.expected = routes;
                let ctx = SyncContext {
                    stream: stream_id,
                    rank,
                    expected: st.expected.clone(),
                    now,
                };
                st.sync.reexamine(&ctx)
            };
            self.process_waves(stream_id, waves);
        }
    }

    /// Confirm a reconfiguration message to its (control-endpoint) sender.
    fn ack_reconfig(&mut self, to: Rank) {
        let rank = self.rank;
        let msg = envelope(Message::ReconfigAck { rank });
        let _ = self.send_to(to, &msg);
    }

    /// Reconfiguration: switch our upstream output to a new parent.
    fn handle_new_parent(&mut self, parent: Rank) {
        self.orphaned_until = None;
        self.events.push("new_parent", parent.to_string());
        if let ProcessRole::Internal { parent: p } = &mut self.role {
            *p = parent;
        }
    }

    /// Fire timer-based flushes whose deadline has passed, and publish a
    /// metrics sample if the publish interval elapsed.
    fn fire_deadlines(&mut self) {
        let now = Instant::now();
        self.publish_metrics(now);
        self.publish_trace(now);
        self.sample_health(now);
        // Liveness through closed windows: a child whose window has been
        // closed with zero grants for a whole grant deadline is not slow,
        // it is gone — the failure detector stays authoritative and flow
        // control degrades into the legacy kill instead of wedging.
        let deadline = self.grant_deadline();
        let silent: Vec<Rank> = self
            .flow
            .iter()
            .filter(|(_, f)| f.closed_since.is_some_and(|t| now >= t + deadline))
            .map(|(c, _)| *c)
            .collect();
        for child in silent {
            self.events.push("flow_silent", child.to_string());
            // Capture before the failure path tears the child's window
            // state down — the bundle's flow section is the evidence.
            self.record_incident(IncidentReason::FlowSilent, child, None);
            self.handle_child_failure(child);
        }
        // While we are the one deferring grants (parked backlog toward a
        // slow child), keep the zero-credit keepalive flowing so our own
        // parent's silence clock doesn't mistake pressure for death.
        self.maybe_send_grant();
        let due: Vec<StreamId> = self
            .streams
            .iter()
            .filter(|(_, st)| st.sync.next_deadline().is_some_and(|d| d <= now))
            .map(|(id, _)| *id)
            .collect();
        for stream_id in due {
            let (waves, merge, gap) = {
                let st = self.streams.get_mut(&stream_id).expect("exists");
                let ctx = SyncContext {
                    stream: stream_id,
                    rank: self.rank,
                    expected: st.expected.clone(),
                    now,
                };
                let waves = st.sync.flush(&ctx);
                let merge = take_merge_span(st, &waves);
                let gap = take_health_gap(st, &waves);
                (waves, merge, gap)
            };
            self.note_merge_gap(gap);
            if let Some((trace, first, last, last_from)) = merge {
                self.span_dur(
                    trace,
                    stream_id,
                    TraceStage::ChildMerge,
                    first,
                    last.saturating_sub(first),
                    last_from as u64,
                );
            }
            self.process_waves(stream_id, waves);
        }
    }

    /// Earliest pending sync, telemetry-publish, health-sampling, or
    /// closed-window liveness deadline.
    fn next_deadline(&self) -> Option<Instant> {
        let sync = self
            .streams
            .values()
            .filter_map(|st| st.sync.next_deadline())
            .min();
        let publish = self.metrics.as_ref().map(|m| m.next_fire);
        let trace = self.trace_pub.as_ref().map(|t| t.next_fire);
        let health = self.health_next_fire;
        let grant_deadline = self.grant_deadline();
        let stall = self
            .flow
            .values()
            .filter_map(|f| f.closed_since.map(|t| t + grant_deadline))
            .min();
        [sync, publish, trace, health, stall]
            .into_iter()
            .flatten()
            .min()
    }

    /// If the publish interval elapsed, build this interval's
    /// [`MetricsSample`] and inject it into the metrics stream as if it
    /// arrived from ourselves — it then merges with the children's samples
    /// through the stream's ordinary wave machinery.
    fn publish_metrics(&mut self, now: Instant) {
        if self.metrics.as_ref().is_none_or(|m| now < m.next_fire) {
            return;
        }
        // Batching counters live in the writer threads; pull them into the
        // perf block so the delta below reflects this interval's batching.
        self.refresh_transport_counters();
        let m = self.metrics.as_mut().expect("checked above");
        while m.next_fire <= now {
            m.next_fire += m.interval;
        }
        m.seq += 1;
        let seq = m.seq;
        let stream = m.stream;
        let interval_us = m.interval.as_micros() as u64;
        let delta = self.perf.delta_since(&m.last);
        m.last = self.perf;

        let mut queue_depth = LogHistogram::new();
        for peer in self.endpoint.peers.ids() {
            if let Some(link) = self.endpoint.peers.get(peer) {
                if let Some(depth) = link.queue_depth() {
                    queue_depth.record(depth as u64);
                }
            }
        }
        let mut executor_queue_depth = LogHistogram::new();
        for depth in self.pool.queue_depths() {
            executor_queue_depth.record(depth as u64);
        }
        let level = {
            let topo = self.topology.read();
            topo.depth_of(NodeId(self.rank.0))
        };
        let mut level_packets_up = vec![0u64; level + 1];
        level_packets_up[level] = delta.packets_up;
        let sample = MetricsSample {
            seq,
            interval_us,
            processes: 1,
            counters: delta,
            wave_latency_us: std::mem::take(&mut self.wave_latency_interval),
            filter_exec_ns: std::mem::take(&mut self.filter_exec_interval),
            executor_wait_ns: std::mem::take(&mut self.executor_wait_interval),
            queue_depth,
            executor_queue_depth,
            // Recovery latencies live with the supervisor; the front-end
            // handle grafts them into received samples (network.rs).
            recovery_us: LogHistogram::new(),
            level_packets_up,
            events_dropped: self.events.dropped(),
        };
        let rank = self.rank;
        self.handle_up(rank, stream, Tag(seq as u32), rank, 0, 0, sample.to_value());
    }

    /// If the trace publish interval elapsed, drain this process's span
    /// ring (bounded by the per-interval byte cap) and inject the batch
    /// into the trace stream as if it arrived from ourselves — it then
    /// concatenates with the children's batches through the stream's
    /// ordinary wave machinery. An empty ring publishes nothing.
    fn publish_trace(&mut self, now: Instant) {
        if self.trace_pub.as_ref().is_none_or(|t| now < t.next_fire) {
            return;
        }
        let t = self.trace_pub.as_mut().expect("checked above");
        while t.next_fire <= now {
            t.next_fire += t.interval;
        }
        t.seq += 1;
        let seq = t.seq;
        let stream = t.stream;
        if self.spans.is_empty() {
            return;
        }
        let batch = self
            .spans
            .drain_batch(self.config.trace.max_bytes_per_interval);
        let rank = self.rank;
        self.handle_up(rank, stream, Tag(seq as u32), rank, 0, 0, batch.to_value());
    }

    /// Fold the writer threads' batching counters into the perf block.
    /// Links come and go (heals swap them out, taking their counters with
    /// them), so the lifetime totals only ever ratchet forward.
    fn refresh_transport_counters(&mut self) {
        let mut batches = 0u64;
        let mut frames = 0u64;
        for peer in self.endpoint.peers.ids() {
            if let Some(link) = self.endpoint.peers.get(peer) {
                if let Some(stats) = link.batch_stats() {
                    batches += stats.batches;
                    frames += stats.frames;
                }
            }
        }
        self.perf.batches_sent = self.perf.batches_sent.max(batches);
        self.perf.frames_batched = self.perf.frames_batched.max(frames);
    }

    /// Fold a completed wave's arrival gap into the interval maximum the
    /// health plane samples as [`HealthSignal::StragglerGap`].
    fn note_merge_gap(&mut self, gap: Option<(u64, u32)>) {
        if let Some((gap_us, from)) = gap {
            if gap_us > self.max_merge_gap_us {
                self.max_merge_gap_us = gap_us;
                self.max_merge_gap_from = from;
            }
        }
    }

    /// If the health check interval elapsed, sample every signal against
    /// its EWMA baseline; threshold crossings raise
    /// [`NetEvent::HealthWarning`] and trip the flight recorder (under the
    /// incident cooldown).
    fn sample_health(&mut self, now: Instant) {
        if self.health_next_fire.is_none_or(|t| now < t) {
            return;
        }
        let interval = self.config.health.check_interval;
        let mut next = self.health_next_fire.expect("checked above");
        while next <= now {
            next += interval;
        }
        self.health_next_fire = Some(next);

        // Raw signal values first (the monitor borrow below is exclusive).
        let writer_queue = self
            .endpoint
            .peers
            .ids()
            .into_iter()
            .filter_map(|p| self.endpoint.peers.get(p).and_then(|l| l.queue_depth()))
            .max()
            .unwrap_or(0) as u64;
        let executor_queue = self.pool.queue_depths().max().unwrap_or(0) as u64;
        let delta = self.perf.delta_since(&self.health_last);
        self.health_last = self.perf;
        let gap_us = std::mem::take(&mut self.max_merge_gap_us);
        let gap_from = std::mem::take(&mut self.max_merge_gap_from);

        let rank = self.rank;
        let ts = now_us();
        let mut fired: Vec<HealthScore> = Vec::new();
        {
            let Some(mon) = self.health.as_mut() else {
                return;
            };
            let samples = [
                (HealthSignal::WriterQueue, rank, writer_queue),
                (HealthSignal::ExecutorQueue, rank, executor_queue),
                (HealthSignal::CreditStall, rank, delta.credits_stalled_us),
                (HealthSignal::StragglerGap, Rank(gap_from), gap_us),
                (HealthSignal::SendFailures, rank, delta.sends_dropped),
            ];
            for (signal, subject, value) in samples {
                if let Some(score) = mon.observe(signal, subject, value, ts) {
                    fired.push(score);
                }
            }
        }
        for score in fired {
            self.perf.health_warnings += 1;
            self.emit_event(NetEvent::HealthWarning {
                rank,
                subject: score.subject,
                signal: score.signal.code(),
                value: score.value,
                baseline: score.baseline,
            });
            self.record_incident(IncidentReason::HealthWarning, score.subject, Some(score));
        }
    }

    /// Trip the flight recorder: freeze-copy this process's forensic state
    /// into an [`IncidentBundle`] and self-inject it into the incident
    /// stream. No-op while no incident stream is open. Health-warning
    /// captures respect the incident cooldown; failure-triggered captures
    /// (lost child, silent window, supervisor verdicts) always fire — a
    /// partition's second loss must not be suppressed by its first.
    fn record_incident(
        &mut self,
        reason: IncidentReason,
        subject: Rank,
        trigger: Option<HealthScore>,
    ) {
        let Some(stream) = self.incident_stream else {
            return;
        };
        let now = Instant::now();
        if reason == IncidentReason::HealthWarning
            && self
                .last_incident
                .is_some_and(|t| now < t + self.config.health.incident_cooldown)
        {
            return;
        }
        self.last_incident = Some(now);
        self.incident_seq += 1;
        let incident = ((self.rank.0 as u64) << 32) | self.incident_seq;
        let bundle = self.capture_bundle(incident, reason, subject, trigger);
        let batch = IncidentBatch {
            dropped: 0,
            bundles: vec![bundle],
        };
        let rank = self.rank;
        let seq = self.incident_seq;
        self.handle_up(rank, stream, Tag(seq as u32), rank, 0, 0, batch.to_value());
    }

    /// Freeze-copy this process's forensic state, bounded by
    /// `HealthConfig::bundle_max_bytes`.
    fn capture_bundle(
        &mut self,
        incident: u64,
        reason: IncidentReason,
        subject: Rank,
        trigger: Option<HealthScore>,
    ) -> IncidentBundle {
        let parent = match &self.role {
            ProcessRole::Internal { parent } => *parent,
            ProcessRole::Root { .. } => Rank(u32::MAX),
        };
        let children = self.live_children();
        let counters = self.perf.delta_since(&self.incident_last);
        self.incident_last = self.perf;
        let mut flow: Vec<FlowSummary> = self
            .flow
            .iter()
            .map(|(c, f)| FlowSummary {
                child: *c,
                credit_frames: f.credit_frames,
                credit_bytes: f.credit_bytes,
                parked_frames: f.pending.len() as u64,
                parked_bytes: f.pending.iter().map(|(_, _, len, _)| *len).sum(),
                closed_for_us: f.closed_since.map_or(0, |t| t.elapsed().as_micros() as u64),
            })
            .collect();
        flow.sort_by_key(|f| f.child.0);
        let mut bundle = IncidentBundle {
            incident,
            rank: self.rank,
            reason,
            subject,
            at_us: now_us(),
            parent,
            children,
            counters,
            trigger,
            scores: self
                .health
                .as_ref()
                .map(HealthMonitor::scores)
                .unwrap_or_default(),
            flow,
            events: self.events.snapshot(),
            spans: self.spans.snapshot(),
        };
        bundle.truncate_to(self.config.health.bundle_max_bytes);
        bundle
    }

    /// Append this process's own view to a forwarded incident batch (the
    /// neighbor bundle carries the *original* incident id, which is what
    /// groups the two sides of the link at the front end). Undecodable
    /// payloads pass through untouched; so does a batch this process
    /// already contributed to.
    fn append_neighbor_view(&mut self, pkt: Packet) -> Packet {
        let Ok(mut batch) = IncidentBatch::from_value(pkt.value()) else {
            return pkt;
        };
        let Some(first) = batch.bundles.first() else {
            return pkt;
        };
        if batch.bundles.iter().any(|b| b.rank == self.rank) {
            return pkt;
        }
        let (incident, origin) = (first.incident, first.rank);
        let neighbor = self.capture_bundle(incident, IncidentReason::Neighbor, origin, None);
        batch.bundles.push(neighbor);
        Packet::traced(
            pkt.stream(),
            pkt.tag(),
            pkt.origin(),
            pkt.stamp_us(),
            pkt.trace_id(),
            batch.to_value(),
        )
    }

    /// Process one decoded message from peer `from`. Returns true if the
    /// event loop should exit.
    fn handle_message(&mut self, from: Rank, msg: Arc<Envelope>) -> bool {
        match msg.msg() {
            Message::Up {
                stream,
                tag,
                origin,
                sent_us,
                trace,
                value,
            } => {
                // Telemetry-stream traffic is excluded so the aggregated
                // packet counts describe the application's load, not the
                // telemetry plane's own.
                if !self.is_telemetry_stream(*stream) {
                    self.perf.packets_up += 1;
                }
                self.handle_up(
                    from,
                    *stream,
                    *tag,
                    *origin,
                    *sent_us,
                    *trace,
                    value.clone(),
                );
                false
            }
            Message::Down {
                stream,
                tag,
                origin,
                sent_us,
                trace,
                value,
            } => {
                self.perf.packets_down += 1;
                let wire = msg.encoded_len() as u64;
                let pkt = Packet::traced(*stream, *tag, *origin, *sent_us, *trace, value.clone());
                self.send_down_packet(*stream, pkt);
                // The frame has left our inbox (forwarded or parked toward
                // children): its window slot at the parent is consumable
                // again — unless our own windows are closed, in which case
                // the grant is withheld and the pressure climbs.
                if self.config.flow.enabled() && !self.is_root() {
                    self.consumed_frames += 1;
                    self.consumed_bytes += wire;
                    self.maybe_send_grant();
                }
                false
            }
            Message::NewStream { .. } => {
                self.perf.control += 1;
                self.handle_new_stream(&msg);
                false
            }
            Message::CloseStream { stream } => {
                self.perf.control += 1;
                self.handle_close_stream(&msg, *stream);
                false
            }
            Message::LoadFilter { name, kind } => {
                let (name, kind) = (name.clone(), *kind);
                self.handle_load_filter(&msg, &name, kind);
                false
            }
            Message::LoadFilterAck { name, ok } => {
                let (name, ok) = (name.clone(), *ok);
                self.handle_load_filter_ack(&name, from, ok);
                false
            }
            Message::Shutdown => {
                if self.begin_shutdown() {
                    self.conclude_shutdown();
                    return true;
                }
                false
            }
            Message::ShutdownAck { rank } => {
                let child = *rank;
                if self.note_shutdown_ack(child) {
                    self.conclude_shutdown();
                    return true;
                }
                false
            }
            Message::Event(ev) => {
                // Events only ever travel upstream; relay without logging
                // (the observing process already logged it).
                self.forward_event(ev.clone());
                false
            }
            Message::Adopt { child } => {
                self.handle_adopt(*child);
                self.ack_reconfig(from);
                false
            }
            Message::NewParent { parent } => {
                self.handle_new_parent(*parent);
                self.ack_reconfig(from);
                false
            }
            Message::ReconfigAck { .. } => false, // only the control endpoint cares
            Message::StreamPrune { stream } => {
                self.handle_stream_prune(from, *stream);
                false
            }
            Message::GetPerf => {
                self.refresh_transport_counters();
                let reply = envelope(Message::PerfReport {
                    rank: self.rank,
                    counters: self.perf,
                });
                let _ = self.send_to(from, &reply);
                false
            }
            Message::PerfReport { .. } => false, // only the control endpoint cares
            Message::GetEvents => {
                let events = self.events.drain();
                let dropped = self.events.dropped();
                let reply = envelope(Message::EventLog {
                    rank: self.rank,
                    events,
                    dropped,
                });
                let _ = self.send_to(from, &reply);
                false
            }
            Message::EventLog { .. } => false, // only the control endpoint cares
            Message::CreditGrant { frames, bytes } => {
                self.perf.control += 1;
                self.handle_credit_grant(from, *frames, *bytes);
                false
            }
            Message::IncidentMark { reason, subject } => {
                self.perf.control += 1;
                if let Ok(reason) = IncidentReason::from_code(*reason) {
                    self.record_incident(reason, *subject, None);
                }
                false
            }
        }
    }

    /// Handle one FE command (root only). Returns true to exit.
    fn handle_fe_command(&mut self, cmd: FeCommand) -> bool {
        match cmd {
            FeCommand::NewStream { spec, reply } => {
                let result = self.fe_new_stream(spec);
                let _ = reply.send(result);
                false
            }
            FeCommand::Send {
                stream,
                tag,
                value,
                reply,
            } => {
                let result = if self.streams.contains_key(&stream) {
                    let pkt = Packet::new(stream, tag, Rank(0), value);
                    self.send_down_packet(stream, pkt);
                    Ok(())
                } else {
                    Err(TbonError::StreamClosed(stream))
                };
                let _ = reply.send(result);
                false
            }
            FeCommand::CloseStream { stream, reply } => {
                let msg = envelope(Message::CloseStream { stream });
                self.handle_close_stream(&msg, stream);
                let _ = reply.send(Ok(()));
                false
            }
            FeCommand::LoadFilter { name, kind, reply } => {
                if let ProcessRole::Root { filter_replies, .. } = &mut self.role {
                    filter_replies.insert(name.clone(), reply);
                }
                let msg = envelope(Message::LoadFilter {
                    name: name.clone(),
                    kind,
                });
                self.handle_load_filter(&msg, &name, kind);
                false
            }
            FeCommand::Shutdown { reply } => {
                if let ProcessRole::Root { shutdown_reply, .. } = &mut self.role {
                    *shutdown_reply = Some(reply);
                }
                if self.begin_shutdown() {
                    self.conclude_shutdown();
                    return true;
                }
                false
            }
            FeCommand::OpenMetrics {
                interval,
                merge,
                reply,
            } => {
                let result = self.fe_open_metrics(interval, merge);
                let _ = reply.send(result);
                false
            }
            FeCommand::OpenTrace { interval, reply } => {
                let result = self.fe_open_trace(interval);
                let _ = reply.send(result);
                false
            }
            FeCommand::OpenIncident { reply } => {
                let result = self.fe_open_incident();
                let _ = reply.send(result);
                false
            }
            FeCommand::WaveLatency { reply } => {
                let _ = reply.send(self.wave_latency_by_stream.clone());
                false
            }
        }
    }

    /// Open the telemetry stream: every communication process (this root
    /// and all internals) is a member and publishes a sample per interval.
    /// With `merge` the built-in `telemetry::metrics_merge` filter folds
    /// them level-by-level so the front-end sees one sample per interval;
    /// without it, identity passes every per-rank sample through for
    /// drill-down.
    fn fe_open_metrics(
        &mut self,
        interval: Duration,
        merge: bool,
    ) -> Result<(StreamId, Receiver<Packet>)> {
        if let Some(m) = &self.metrics {
            return Err(TbonError::Filter(format!(
                "metrics stream {} is already open",
                m.stream
            )));
        }
        let members: Vec<Rank> = {
            let topo = self.topology.read();
            topo.node_ids()
                .filter(|&n| matches!(topo.role(n), Role::FrontEnd | Role::Internal))
                .map(|n| Rank(n.0))
                .collect()
        };
        let stream_id = match &mut self.role {
            ProcessRole::Root { next_stream, .. } => {
                let id = StreamId(*next_stream);
                *next_stream += 1;
                id
            }
            ProcessRole::Internal { .. } => unreachable!("fe_open_metrics on internal"),
        };
        let transformation = if merge {
            METRICS_FILTER
        } else {
            "core::identity"
        };
        let msg = envelope(Message::NewStream {
            stream: stream_id,
            members,
            transformation: transformation.to_owned(),
            params: DataValue::U64(interval.as_micros() as u64),
            sync_name: "sync::wait_for_all".to_owned(),
            sync_params: DataValue::Unit,
            downstream_filter: None,
            downstream_params: DataValue::Unit,
            mode: StreamMode::Upstream,
        });
        self.handle_new_stream(&msg);
        if !self.streams.contains_key(&stream_id) {
            return Err(TbonError::Filter(format!(
                "failed to instantiate metrics stream {stream_id} at root"
            )));
        }
        let (tx, rx) = crossbeam_channel::unbounded();
        if let ProcessRole::Root { fe_streams, .. } = &mut self.role {
            fe_streams.insert(stream_id, tx);
        }
        Ok((stream_id, rx))
    }

    /// Open the incident stream: the flight-recorder plane. Members are the
    /// communication processes (the forensic state lives there); bundles
    /// are event-driven, so the stream synchronizes with `sync::null` —
    /// every capture forwards immediately, and `health::incident_gather`
    /// concatenates whatever batches share a wave under a byte cap.
    fn fe_open_incident(&mut self) -> Result<(StreamId, Receiver<Packet>)> {
        if let Some(s) = self.incident_stream {
            return Err(TbonError::Filter(format!(
                "incident stream {s} is already open"
            )));
        }
        let members: Vec<Rank> = {
            let topo = self.topology.read();
            topo.node_ids()
                .filter(|&n| matches!(topo.role(n), Role::FrontEnd | Role::Internal))
                .map(|n| Rank(n.0))
                .collect()
        };
        let stream_id = match &mut self.role {
            ProcessRole::Root { next_stream, .. } => {
                let id = StreamId(*next_stream);
                *next_stream += 1;
                id
            }
            ProcessRole::Internal { .. } => unreachable!("fe_open_incident on internal"),
        };
        let msg = envelope(Message::NewStream {
            stream: stream_id,
            members,
            transformation: INCIDENT_FILTER.to_owned(),
            params: DataValue::Unit,
            sync_name: "sync::null".to_owned(),
            sync_params: DataValue::Unit,
            downstream_filter: None,
            downstream_params: DataValue::Unit,
            mode: StreamMode::Upstream,
        });
        self.handle_new_stream(&msg);
        if !self.streams.contains_key(&stream_id) {
            return Err(TbonError::Filter(format!(
                "failed to instantiate incident stream {stream_id} at root"
            )));
        }
        let (tx, rx) = crossbeam_channel::unbounded();
        if let ProcessRole::Root { fe_streams, .. } = &mut self.role {
            fe_streams.insert(stream_id, tx);
        }
        Ok((stream_id, rx))
    }

    /// Open the trace stream: **every** live rank is a member — the
    /// communication processes publish their span rings on a timer, and
    /// the back-ends piggyback theirs opportunistically after each sampled
    /// send (leaves have no timers). Because leaf batches arrive
    /// irregularly, the stream synchronizes with `sync::time_out` rather
    /// than `wait_for_all`: each hop forwards whatever batches landed
    /// within the window instead of waiting on every child.
    fn fe_open_trace(&mut self, interval: Duration) -> Result<(StreamId, Receiver<Packet>)> {
        if let Some(t) = &self.trace_pub {
            return Err(TbonError::Filter(format!(
                "trace stream {} is already open",
                t.stream
            )));
        }
        if !self.config.trace.enabled() {
            return Err(TbonError::Filter(
                "tracing is disabled (NetworkConfig.trace.sample_every is 0)".into(),
            ));
        }
        let members: Vec<Rank> = {
            let topo = self.topology.read();
            topo.node_ids()
                .filter(|&n| topo.role(n) != Role::Detached)
                .map(|n| Rank(n.0))
                .collect()
        };
        let stream_id = match &mut self.role {
            ProcessRole::Root { next_stream, .. } => {
                let id = StreamId(*next_stream);
                *next_stream += 1;
                id
            }
            ProcessRole::Internal { .. } => unreachable!("fe_open_trace on internal"),
        };
        let window_ms = (interval.as_millis() as u64).max(1);
        let msg = envelope(Message::NewStream {
            stream: stream_id,
            members,
            transformation: TRACE_FILTER.to_owned(),
            params: DataValue::U64(interval.as_micros() as u64),
            sync_name: "sync::time_out".to_owned(),
            sync_params: DataValue::U64(window_ms),
            downstream_filter: None,
            downstream_params: DataValue::Unit,
            mode: StreamMode::Upstream,
        });
        self.handle_new_stream(&msg);
        if !self.streams.contains_key(&stream_id) {
            return Err(TbonError::Filter(format!(
                "failed to instantiate trace stream {stream_id} at root"
            )));
        }
        let (tx, rx) = crossbeam_channel::unbounded();
        if let ProcessRole::Root { fe_streams, .. } = &mut self.role {
            fe_streams.insert(stream_id, tx);
        }
        Ok((stream_id, rx))
    }

    /// Allocate and create a stream at the root on behalf of the front-end.
    fn fe_new_stream(&mut self, spec: StreamSpec) -> Result<(StreamId, Receiver<Packet>)> {
        let members: Vec<Rank> = {
            let topo = self.topology.read();
            match &spec.members {
                Members::All => {
                    let leaves: Vec<Rank> = topo.leaves().into_iter().map(|n| Rank(n.0)).collect();
                    if leaves.is_empty() {
                        return Err(TbonError::BadMembers("topology has no back-ends".into()));
                    }
                    leaves
                }
                Members::Ranks(ranks) => {
                    if ranks.is_empty() {
                        return Err(TbonError::BadMembers("empty member list".into()));
                    }
                    for r in ranks {
                        if topo.role(NodeId(r.0)) != Role::BackEnd {
                            return Err(TbonError::BadMembers(format!(
                                "{r} is not a live back-end"
                            )));
                        }
                    }
                    ranks.clone()
                }
                Members::Subtree(node) => {
                    let id = NodeId(node.0);
                    if !topo.contains(id) || topo.role(id) == Role::Detached {
                        return Err(TbonError::BadMembers(format!(
                            "{node} is not in the topology"
                        )));
                    }
                    let leaves: Vec<Rank> = topo
                        .leaves_below(id)
                        .into_iter()
                        .filter(|n| topo.role(*n) == Role::BackEnd)
                        .map(|n| Rank(n.0))
                        .collect();
                    if leaves.is_empty() {
                        return Err(TbonError::BadMembers(format!("no back-ends below {node}")));
                    }
                    leaves
                }
            }
        };

        // Validate filters up front at the root; remote processes revalidate
        // and report errors via events.
        if !self.registry.has_transformation(&spec.transformation) {
            return Err(TbonError::UnknownFilter(spec.transformation.clone()));
        }
        if !self.registry.has_synchronization(&spec.sync_name) {
            return Err(TbonError::UnknownFilter(spec.sync_name.clone()));
        }
        if let Some(name) = &spec.downstream_filter {
            if !self.registry.has_transformation(name) {
                return Err(TbonError::UnknownFilter(name.clone()));
            }
        }

        let stream_id = match &mut self.role {
            ProcessRole::Root { next_stream, .. } => {
                let id = StreamId(*next_stream);
                *next_stream += 1;
                id
            }
            ProcessRole::Internal { .. } => unreachable!("fe_new_stream on internal"),
        };

        let msg = envelope(Message::NewStream {
            stream: stream_id,
            members,
            transformation: spec.transformation,
            params: spec.params,
            sync_name: spec.sync_name,
            sync_params: spec.sync_params,
            downstream_filter: spec.downstream_filter,
            downstream_params: spec.downstream_params,
            mode: spec.mode,
        });
        self.handle_new_stream(&msg);
        if !self.streams.contains_key(&stream_id) {
            return Err(TbonError::Filter(format!(
                "failed to instantiate filters for {stream_id} at root"
            )));
        }

        let (tx, rx) = crossbeam_channel::unbounded();
        if let ProcessRole::Root { fe_streams, .. } = &mut self.role {
            fe_streams.insert(stream_id, tx);
        }
        Ok((stream_id, rx))
    }

    /// The event loop. Runs until shutdown completes or the parent vanishes.
    pub(crate) fn run(mut self) {
        self.events
            .push("start", if self.is_root() { "root" } else { "internal" });
        /// How many back-to-back inputs may be handled between expired-
        /// deadline scans. A scan costs a clock read plus a walk of the
        /// stream table, and with a deadline armed (timeout sync or the
        /// telemetry plane) doing it per input measurably taxes wave
        /// throughput. Worst case a deadline fires this many back-to-back
        /// inputs late — microseconds, since the strobe only lags while
        /// messages are processed at full speed; the moment the queue runs
        /// dry the blocking path below wakes at the precise deadline.
        const DEADLINE_STROBE: u32 = 64;
        let mut inputs_since_scan: u32 = 0;
        loop {
            enum Input {
                Net(Delivery),
                Cmd(FeCommand),
                Pool(WaveOutput),
                Tick,
                NetClosed,
                CmdClosed,
            }

            // Fast path: under continuous traffic the next message is
            // already queued, and computing a blocking timeout (deadline
            // walk plus a clock read) per input is pure overhead. Only fall
            // back to deadline math when we actually have to block. Pool
            // results take priority over FE commands: they carry filter
            // outputs already paid for, and applying them frees in-flight
            // slots that gate the inline fast path.
            let ready = match &self.role {
                ProcessRole::Root { fe_cmd, .. } => match self.endpoint.incoming.try_recv() {
                    Ok(d) => Some(Input::Net(d)),
                    Err(crossbeam_channel::TryRecvError::Disconnected) => Some(Input::NetClosed),
                    Err(crossbeam_channel::TryRecvError::Empty) => {
                        match self.pool.try_recv_result() {
                            Some(out) => Some(Input::Pool(out)),
                            None => match fe_cmd.try_recv() {
                                Ok(c) => Some(Input::Cmd(c)),
                                Err(crossbeam_channel::TryRecvError::Disconnected) => {
                                    Some(Input::CmdClosed)
                                }
                                Err(crossbeam_channel::TryRecvError::Empty) => None,
                            },
                        }
                    }
                },
                ProcessRole::Internal { .. } => match self.endpoint.incoming.try_recv() {
                    Ok(d) => Some(Input::Net(d)),
                    Err(crossbeam_channel::TryRecvError::Disconnected) => Some(Input::NetClosed),
                    Err(crossbeam_channel::TryRecvError::Empty) => {
                        self.pool.try_recv_result().map(Input::Pool)
                    }
                },
            };

            let input = if let Some(input) = ready {
                input
            } else {
                let timeout = self
                    .next_deadline()
                    .map(|d| d.saturating_duration_since(Instant::now()))
                    .unwrap_or(self.config.idle_tick)
                    .min(self.config.idle_tick);
                match &self.role {
                    ProcessRole::Root { fe_cmd, .. } => {
                        crossbeam_channel::select! {
                            recv(self.endpoint.incoming) -> d => match d {
                                Ok(d) => Input::Net(d),
                                Err(_) => Input::NetClosed,
                            },
                            recv(self.pool.results()) -> r => match r {
                                Ok(out) => Input::Pool(out),
                                // Unreachable: the pool holds a sender.
                                Err(_) => Input::Tick,
                            },
                            recv(fe_cmd) -> c => match c {
                                Ok(c) => Input::Cmd(c),
                                Err(_) => Input::CmdClosed,
                            },
                            default(timeout) => Input::Tick,
                        }
                    }
                    ProcessRole::Internal { .. } => {
                        crossbeam_channel::select! {
                            recv(self.endpoint.incoming) -> d => match d {
                                Ok(d) => Input::Net(d),
                                Err(_) => Input::NetClosed,
                            },
                            recv(self.pool.results()) -> r => match r {
                                Ok(out) => Input::Pool(out),
                                // Unreachable: the pool holds a sender.
                                Err(_) => Input::Tick,
                            },
                            default(timeout) => Input::Tick,
                        }
                    }
                }
            };

            match input {
                Input::Net(Delivery::Frame { from, frame }) => {
                    let t0 = if self.config.trace.enabled() {
                        now_us()
                    } else {
                        0
                    };
                    match decode_frame(frame) {
                        Ok(msg) => {
                            // Decode attribution for sampled data frames;
                            // the trace id is only known once decoding
                            // finishes.
                            if t0 != 0 {
                                if let Message::Up { stream, trace, .. }
                                | Message::Down { stream, trace, .. } = msg.msg()
                                {
                                    let (stream, trace) = (*stream, *trace);
                                    self.span_since(trace, stream, TraceStage::Decode, t0, 0);
                                }
                            }
                            if self.handle_message(Rank(from), msg) {
                                break;
                            }
                        }
                        Err(e) => {
                            let rank = self.rank;
                            self.emit_event(NetEvent::FilterError {
                                rank,
                                detail: format!("frame decode from rank{from}: {e}"),
                            });
                        }
                    }
                }
                Input::Net(Delivery::Disconnected { peer }) => {
                    let peer = Rank(peer);
                    let is_parent = matches!(
                        self.role,
                        ProcessRole::Internal { parent } if parent == peer
                    );
                    if is_parent {
                        if self.shutting_down {
                            break;
                        }
                        // Orphaned: hold on for the reconfiguration grace
                        // period in case the front-end heals the tree.
                        self.orphaned_until = Some(Instant::now() + self.config.orphan_grace);
                        self.events.push("orphaned", peer.to_string());
                    } else {
                        self.handle_child_failure(peer);
                        if self.shutting_down && self.shutdown_pending.is_empty() {
                            break;
                        }
                    }
                }
                Input::Cmd(cmd) => {
                    if self.handle_fe_command(cmd) {
                        break;
                    }
                }
                Input::Pool(out) => self.apply_wave_output(out),
                Input::Tick => {
                    if self
                        .orphaned_until
                        .is_some_and(|deadline| Instant::now() >= deadline)
                    {
                        // No one re-parented us in time; give up.
                        break;
                    }
                    self.fire_deadlines()
                }
                Input::NetClosed | Input::CmdClosed => break,
            }

            // Under continuous traffic the fast path above always finds
            // input ready and the Tick arm starves; expired deadlines (sync
            // timeouts, metrics publishing) still have to fire, so scan for
            // them every DEADLINE_STROBE inputs.
            inputs_since_scan += 1;
            if inputs_since_scan >= DEADLINE_STROBE {
                inputs_since_scan = 0;
                if !self.shutting_down && self.next_deadline().is_some_and(|d| d <= Instant::now())
                {
                    self.fire_deadlines();
                }
            }
        }
    }
}
