//! The control/data protocol spoken between overlay processes.
//!
//! Every frame on a link is one encoded [`Message`]. On byte-carrying links
//! (TCP) the message is serialized with the same little-endian conventions
//! as the value codec; on zero-copy local links an `Arc<Message>` travels
//! directly and `encoded_len` is charged as the frame's size hint.

use std::sync::{Arc, OnceLock};

use crate::codec::{encode_value, Reader};
use crate::error::{Result, TbonError};
use crate::packet::{Packet, Rank};
use crate::stream::{StreamId, StreamMode, Tag};
use crate::telemetry::LoggedEvent;
use crate::value::DataValue;

/// Which registry a [`Message::LoadFilter`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterKind {
    Transformation,
    Synchronization,
}

/// Asynchronous notifications that ride upstream to the front-end.
#[derive(Debug, Clone, PartialEq)]
pub enum NetEvent {
    /// A back-end disconnected without acking shutdown; `detected_by` is the
    /// parent that observed the failure.
    BackendLost { rank: Rank, detected_by: Rank },
    /// A back-end joined at runtime (emitted locally by the front-end).
    BackendJoined { rank: Rank, parent: Rank },
    /// An *internal* communication process disconnected: its subtree is
    /// orphaned until [`crate::Network::heal_internal_failure`] reattaches
    /// it (the paper's dynamic-reconfiguration extension).
    SubtreeOrphaned { rank: Rank, detected_by: Rank },
    /// A process failed to instantiate a filter for a new stream.
    FilterError { rank: Rank, detail: String },
    /// A process could not deliver traffic to `peer` (link closed or
    /// backpressure deadline exceeded). Emitted once per peer; subsequent
    /// drops only bump [`PerfCounters::sends_dropped`].
    SendFailed { rank: Rank, peer: Rank },
    /// The supervisor finished recovering from a failure involving `rank`
    /// (an internal splice or a back-end reattach): the listed nodes were
    /// re-parented and traffic flows again. `recovery_us` is detection to
    /// completion latency, also recorded in the supervisor's histogram.
    Healed {
        rank: Rank,
        adopted: Vec<Rank>,
        recovery_us: u64,
    },
    /// The supervisor gave up on recovering `rank` after exhausting its
    /// retry budget; the tree keeps running without that subtree.
    Degraded { rank: Rank, detail: String },
    /// A process's continuous health scoring crossed its warning threshold:
    /// `signal` (a [`crate::health::HealthSignal`] code) measured `value`
    /// against an EWMA `baseline` at `rank`. `subject` names the child or
    /// peer the signal concerns, or `rank` itself for process-wide signals.
    HealthWarning {
        rank: Rank,
        subject: Rank,
        signal: u8,
        value: u64,
        baseline: u64,
    },
}

/// Everything that can cross a link.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Upstream application data (child → parent).
    Up {
        stream: StreamId,
        tag: Tag,
        origin: Rank,
        /// Injection timestamp ([`crate::telemetry::now_us`] at the
        /// originating process); `0` means unstamped. Used by the front-end
        /// to resolve end-to-end wave latency.
        sent_us: u64,
        /// Distributed-trace id; `0` means untraced. Sampled waves carry a
        /// nonzero id so each hop can attribute spans to them; the id is
        /// opaque on the wire (durations are always measured locally).
        trace: u64,
        value: DataValue,
    },
    /// Downstream application data (parent → subtree members).
    Down {
        stream: StreamId,
        tag: Tag,
        origin: Rank,
        /// Injection timestamp; `0` means unstamped. See [`Message::Up`].
        sent_us: u64,
        /// Distributed-trace id; `0` means untraced. See [`Message::Up`].
        trace: u64,
        value: DataValue,
    },
    /// Stream creation, propagated down the tree.
    NewStream {
        stream: StreamId,
        members: Vec<Rank>,
        transformation: String,
        params: DataValue,
        sync_name: String,
        sync_params: DataValue,
        downstream_filter: Option<String>,
        downstream_params: DataValue,
        mode: StreamMode,
    },
    /// Tear down a stream, propagated down the tree.
    CloseStream { stream: StreamId },
    /// Probe/load a filter on every process ("dlopen" path). Acked.
    LoadFilter { name: String, kind: FilterKind },
    /// Aggregated answer to [`Message::LoadFilter`]: true iff the whole
    /// subtree can instantiate the filter.
    LoadFilterAck { name: String, ok: bool },
    /// Orderly teardown, propagated down; acked bottom-up.
    Shutdown,
    /// Subtree finished shutting down.
    ShutdownAck { rank: Rank },
    /// Asynchronous event headed to the front-end.
    Event(NetEvent),
    /// Reconfiguration (control channel → surviving parent): treat `child`
    /// as one of your children from now on; recompute stream routing.
    Adopt { child: Rank },
    /// Reconfiguration (control channel → orphaned process): your parent is
    /// now `parent`; resume sending upstream traffic to it.
    NewParent { parent: Rank },
    /// Acknowledges an `Adopt`/`NewParent`, sent back to the control
    /// endpoint so reconfiguration is synchronous.
    ReconfigAck { rank: Rank },
    /// A communication process telling its parent that it can no longer
    /// contribute to `stream` (every member below it is gone): the parent
    /// must stop waiting for it in that stream's waves.
    StreamPrune { stream: StreamId },
    /// Introspection request (control channel → any communication
    /// process): report your performance counters.
    GetPerf,
    /// Introspection reply with the process's lifetime counters.
    PerfReport { rank: Rank, counters: PerfCounters },
    /// Introspection request (control channel): drain your structured
    /// event ring.
    GetEvents,
    /// Introspection reply: the drained event ring plus the lifetime count
    /// of events evicted before they could be read.
    EventLog {
        rank: Rank,
        events: Vec<LoggedEvent>,
        dropped: u64,
    },
    /// Flow control (child → parent): the child consumed downstream data
    /// frames and returns the window capacity they occupied. A sender whose
    /// window for that child was closed may resume dequeuing. Credits are
    /// capped at the configured window on receipt, so a duplicated or
    /// replayed grant can never inflate the window.
    CreditGrant { frames: u64, bytes: u64 },
    /// Flight-recorder trigger (control channel → any communication
    /// process): freeze-copy local forensic state into an incident bundle
    /// and ship it on the incident stream. Sent by the supervisor after a
    /// heal/degrade so the bundle captures the post-recovery picture;
    /// `reason` is a [`crate::health::IncidentReason`] code and `subject`
    /// the rank the incident concerns.
    IncidentMark { reason: u8, subject: Rank },
}

/// Lifetime activity counters of one communication process — the
/// observability MRNet exposes for its own internals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PerfCounters {
    /// Upstream data packets received from children.
    pub packets_up: u64,
    /// Downstream data packets routed toward members.
    pub packets_down: u64,
    /// Waves released by synchronization filters.
    pub waves: u64,
    /// Packets produced by transformation filters.
    pub filter_out: u64,
    /// Cumulative transformation-filter execution time, nanoseconds.
    pub filter_ns: u64,
    /// Control messages handled (stream lifecycle, shutdown, ...).
    pub control: u64,
    /// Frames handed to outbound links (wire and local).
    pub frames_sent: u64,
    /// Payload bytes handed to outbound links (encoded size for every
    /// frame, including the size hint charged for zero-copy frames).
    pub bytes_sent: u64,
    /// Times a message was actually serialized for the wire. A multicast
    /// of one packet to N wire children costs exactly one encode.
    pub encodes_performed: u64,
    /// Sends abandoned because the peer's link was closed or its writer
    /// queue stayed full past the configured deadline.
    pub sends_dropped: u64,
    /// Waves whose transformation filter actually ran to completion
    /// (inline or on the filter pool). Trails [`PerfCounters::waves`] by
    /// the pool's in-flight count.
    pub waves_executed: u64,
    /// Cumulative wall-clock microseconds filter executions kept a worker
    /// (or the event loop, for inline waves) busy.
    pub filter_busy_us: u64,
    /// Coalesced write batches flushed by this process's wire-link writers.
    pub batches_sent: u64,
    /// Frames carried inside those batches; `frames_batched /
    /// batches_sent` is the average batch occupancy.
    pub frames_batched: u64,
    /// Cumulative wall-clock microseconds downstream sends spent parked
    /// behind a closed credit window (summed across children).
    pub credits_stalled_us: u64,
    /// `CreditGrant` frames this process sent to its parent.
    pub grants_sent: u64,
    /// Times a downstream send found a child's credit window closed and
    /// buffered the frame instead of transmitting.
    pub window_closed: u64,
    /// Health-plane warnings raised by this process (threshold crossings
    /// over the EWMA baselines; see `crates/core/src/health.rs`).
    pub health_warnings: u64,
}

impl PerfCounters {
    /// Per-field difference since an earlier snapshot (saturating, so a
    /// restarted process reports zeros rather than wrapping).
    pub fn delta_since(&self, earlier: &PerfCounters) -> PerfCounters {
        PerfCounters {
            packets_up: self.packets_up.saturating_sub(earlier.packets_up),
            packets_down: self.packets_down.saturating_sub(earlier.packets_down),
            waves: self.waves.saturating_sub(earlier.waves),
            filter_out: self.filter_out.saturating_sub(earlier.filter_out),
            filter_ns: self.filter_ns.saturating_sub(earlier.filter_ns),
            control: self.control.saturating_sub(earlier.control),
            frames_sent: self.frames_sent.saturating_sub(earlier.frames_sent),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            encodes_performed: self
                .encodes_performed
                .saturating_sub(earlier.encodes_performed),
            sends_dropped: self.sends_dropped.saturating_sub(earlier.sends_dropped),
            waves_executed: self.waves_executed.saturating_sub(earlier.waves_executed),
            filter_busy_us: self.filter_busy_us.saturating_sub(earlier.filter_busy_us),
            batches_sent: self.batches_sent.saturating_sub(earlier.batches_sent),
            frames_batched: self.frames_batched.saturating_sub(earlier.frames_batched),
            credits_stalled_us: self
                .credits_stalled_us
                .saturating_sub(earlier.credits_stalled_us),
            grants_sent: self.grants_sent.saturating_sub(earlier.grants_sent),
            window_closed: self.window_closed.saturating_sub(earlier.window_closed),
            health_warnings: self.health_warnings.saturating_sub(earlier.health_warnings),
        }
    }

    /// Field-wise accumulate (used when merging telemetry samples).
    /// Saturating: counters come off the wire, and a hostile or wrapped
    /// sample must not panic the process folding it.
    pub fn absorb(&mut self, other: &PerfCounters) {
        self.packets_up = self.packets_up.saturating_add(other.packets_up);
        self.packets_down = self.packets_down.saturating_add(other.packets_down);
        self.waves = self.waves.saturating_add(other.waves);
        self.filter_out = self.filter_out.saturating_add(other.filter_out);
        self.filter_ns = self.filter_ns.saturating_add(other.filter_ns);
        self.control = self.control.saturating_add(other.control);
        self.frames_sent = self.frames_sent.saturating_add(other.frames_sent);
        self.bytes_sent = self.bytes_sent.saturating_add(other.bytes_sent);
        self.encodes_performed = self
            .encodes_performed
            .saturating_add(other.encodes_performed);
        self.sends_dropped = self.sends_dropped.saturating_add(other.sends_dropped);
        self.waves_executed = self.waves_executed.saturating_add(other.waves_executed);
        self.filter_busy_us = self.filter_busy_us.saturating_add(other.filter_busy_us);
        self.batches_sent = self.batches_sent.saturating_add(other.batches_sent);
        self.frames_batched = self.frames_batched.saturating_add(other.frames_batched);
        self.credits_stalled_us = self
            .credits_stalled_us
            .saturating_add(other.credits_stalled_us);
        self.grants_sent = self.grants_sent.saturating_add(other.grants_sent);
        self.window_closed = self.window_closed.saturating_add(other.window_closed);
        self.health_warnings = self.health_warnings.saturating_add(other.health_warnings);
    }
}

/// Wire size of an encoded [`PerfCounters`].
pub const PERF_COUNTERS_WIRE_LEN: usize = 18 * 8;

/// Encode counters as eighteen little-endian `u64`s (shared by
/// `PerfReport` and the telemetry `MetricsSample`).
pub fn encode_perf_counters(c: &PerfCounters, buf: &mut Vec<u8>) {
    for v in [
        c.packets_up,
        c.packets_down,
        c.waves,
        c.filter_out,
        c.filter_ns,
        c.control,
        c.frames_sent,
        c.bytes_sent,
        c.encodes_performed,
        c.sends_dropped,
        c.waves_executed,
        c.filter_busy_us,
        c.batches_sent,
        c.frames_batched,
        c.credits_stalled_us,
        c.grants_sent,
        c.window_closed,
        c.health_warnings,
    ] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Inverse of [`encode_perf_counters`].
pub fn decode_perf_counters(r: &mut Reader<'_>) -> Result<PerfCounters> {
    let mut vals = [0u64; 18];
    for v in &mut vals {
        *v = r.u64()?;
    }
    Ok(PerfCounters {
        packets_up: vals[0],
        packets_down: vals[1],
        waves: vals[2],
        filter_out: vals[3],
        filter_ns: vals[4],
        control: vals[5],
        frames_sent: vals[6],
        bytes_sent: vals[7],
        encodes_performed: vals[8],
        sends_dropped: vals[9],
        waves_executed: vals[10],
        filter_busy_us: vals[11],
        batches_sent: vals[12],
        frames_batched: vals[13],
        credits_stalled_us: vals[14],
        grants_sent: vals[15],
        window_closed: vals[16],
        health_warnings: vals[17],
    })
}

/// A [`Message`] bundled with a lazily-populated memo of its wire encoding.
///
/// Every outbound message travels as an `Arc<Envelope>`. The first link that
/// needs bytes serializes the message and caches the buffer; every other
/// link — the other N-1 children of a multicast — shares the same
/// allocation. Zero-copy local links never trigger an encode at all.
pub struct Envelope {
    msg: Message,
    encoded: OnceLock<Arc<[u8]>>,
}

impl Envelope {
    pub fn new(msg: Message) -> Self {
        Envelope {
            msg,
            encoded: OnceLock::new(),
        }
    }

    /// Wrap a message decoded from the wire, seeding the memo with the bytes
    /// it arrived as — forwarding it to children costs zero further encodes.
    pub fn from_wire(msg: Message, bytes: Arc<[u8]>) -> Self {
        let encoded = OnceLock::new();
        let _ = encoded.set(bytes);
        Envelope { msg, encoded }
    }

    pub fn msg(&self) -> &Message {
        &self.msg
    }

    /// The cached wire encoding, serializing on first use. The boolean is
    /// true iff this call performed the encode (so callers can count real
    /// serialization work). Envelopes are sent from a single process
    /// thread, so the flag is not expected to race.
    pub fn encoded(&self) -> (&Arc<[u8]>, bool) {
        let mut fresh = false;
        let bytes = self.encoded.get_or_init(|| {
            fresh = true;
            encode_message(&self.msg).into()
        });
        (bytes, fresh)
    }

    /// Exact wire size without forcing an encode.
    pub fn encoded_len(&self) -> usize {
        match self.encoded.get() {
            Some(bytes) => bytes.len(),
            None => message_encoded_len(&self.msg),
        }
    }
}

impl From<Message> for Envelope {
    fn from(msg: Message) -> Self {
        Envelope::new(msg)
    }
}

impl std::fmt::Debug for Envelope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Envelope")
            .field("msg", &self.msg)
            .field("encoded", &self.encoded.get().map(|b| b.len()))
            .finish()
    }
}

impl Message {
    /// Build an `Up` message from a packet (cloning only the Arc).
    pub fn up_from_packet(pkt: &Packet) -> Message {
        Message::Up {
            stream: pkt.stream(),
            tag: pkt.tag(),
            origin: pkt.origin(),
            sent_us: pkt.stamp_us(),
            trace: pkt.trace_id(),
            value: pkt.value().clone(),
        }
    }

    /// Build a `Down` message from a packet.
    pub fn down_from_packet(pkt: &Packet) -> Message {
        Message::Down {
            stream: pkt.stream(),
            tag: pkt.tag(),
            origin: pkt.origin(),
            sent_us: pkt.stamp_us(),
            trace: pkt.trace_id(),
            value: pkt.value().clone(),
        }
    }
}

// --- encoding ---------------------------------------------------------------

const M_UP: u8 = 1;
const M_DOWN: u8 = 2;
const M_NEW_STREAM: u8 = 3;
const M_CLOSE_STREAM: u8 = 4;
const M_LOAD_FILTER: u8 = 5;
const M_LOAD_FILTER_ACK: u8 = 6;
const M_SHUTDOWN: u8 = 7;
const M_SHUTDOWN_ACK: u8 = 8;
const M_EVENT: u8 = 9;
const M_ADOPT: u8 = 10;
const M_NEW_PARENT: u8 = 11;
const M_RECONFIG_ACK: u8 = 12;
const M_GET_PERF: u8 = 13;
const M_STREAM_PRUNE: u8 = 15;
const M_PERF_REPORT: u8 = 14;
const M_GET_EVENTS: u8 = 16;
const M_EVENT_LOG: u8 = 17;
const M_CREDIT_GRANT: u8 = 18;
const M_INCIDENT_MARK: u8 = 19;

const EV_BACKEND_LOST: u8 = 1;
const EV_BACKEND_JOINED: u8 = 2;
const EV_FILTER_ERROR: u8 = 3;
const EV_SUBTREE_ORPHANED: u8 = 4;
const EV_SEND_FAILED: u8 = 5;
const EV_HEALED: u8 = 6;
const EV_DEGRADED: u8 = 7;
const EV_HEALTH_WARNING: u8 = 8;

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Encode a message to bytes for wire links.
pub fn encode_message(msg: &Message) -> Vec<u8> {
    let mut buf = Vec::with_capacity(message_encoded_len(msg));
    match msg {
        Message::Up {
            stream,
            tag,
            origin,
            sent_us,
            trace,
            value,
        } => {
            buf.push(M_UP);
            put_u32(&mut buf, stream.0);
            put_u32(&mut buf, tag.0);
            put_u32(&mut buf, origin.0);
            buf.extend_from_slice(&sent_us.to_le_bytes());
            buf.extend_from_slice(&trace.to_le_bytes());
            encode_value(value, &mut buf);
        }
        Message::Down {
            stream,
            tag,
            origin,
            sent_us,
            trace,
            value,
        } => {
            buf.push(M_DOWN);
            put_u32(&mut buf, stream.0);
            put_u32(&mut buf, tag.0);
            put_u32(&mut buf, origin.0);
            buf.extend_from_slice(&sent_us.to_le_bytes());
            buf.extend_from_slice(&trace.to_le_bytes());
            encode_value(value, &mut buf);
        }
        Message::NewStream {
            stream,
            members,
            transformation,
            params,
            sync_name,
            sync_params,
            downstream_filter,
            downstream_params,
            mode,
        } => {
            buf.push(M_NEW_STREAM);
            put_u32(&mut buf, stream.0);
            put_u32(&mut buf, members.len() as u32);
            for m in members {
                put_u32(&mut buf, m.0);
            }
            put_str(&mut buf, transformation);
            encode_value(params, &mut buf);
            put_str(&mut buf, sync_name);
            encode_value(sync_params, &mut buf);
            match downstream_filter {
                Some(name) => {
                    buf.push(1);
                    put_str(&mut buf, name);
                }
                None => buf.push(0),
            }
            encode_value(downstream_params, &mut buf);
            buf.push(match mode {
                StreamMode::Upstream => 0,
                StreamMode::Bidirectional => 1,
            });
        }
        Message::CloseStream { stream } => {
            buf.push(M_CLOSE_STREAM);
            put_u32(&mut buf, stream.0);
        }
        Message::LoadFilter { name, kind } => {
            buf.push(M_LOAD_FILTER);
            put_str(&mut buf, name);
            buf.push(match kind {
                FilterKind::Transformation => 0,
                FilterKind::Synchronization => 1,
            });
        }
        Message::LoadFilterAck { name, ok } => {
            buf.push(M_LOAD_FILTER_ACK);
            put_str(&mut buf, name);
            buf.push(u8::from(*ok));
        }
        Message::Shutdown => buf.push(M_SHUTDOWN),
        Message::ShutdownAck { rank } => {
            buf.push(M_SHUTDOWN_ACK);
            put_u32(&mut buf, rank.0);
        }
        Message::Adopt { child } => {
            buf.push(M_ADOPT);
            put_u32(&mut buf, child.0);
        }
        Message::NewParent { parent } => {
            buf.push(M_NEW_PARENT);
            put_u32(&mut buf, parent.0);
        }
        Message::ReconfigAck { rank } => {
            buf.push(M_RECONFIG_ACK);
            put_u32(&mut buf, rank.0);
        }
        Message::StreamPrune { stream } => {
            buf.push(M_STREAM_PRUNE);
            put_u32(&mut buf, stream.0);
        }
        Message::GetPerf => buf.push(M_GET_PERF),
        Message::PerfReport { rank, counters } => {
            buf.push(M_PERF_REPORT);
            put_u32(&mut buf, rank.0);
            encode_perf_counters(counters, &mut buf);
        }
        Message::GetEvents => buf.push(M_GET_EVENTS),
        Message::EventLog {
            rank,
            events,
            dropped,
        } => {
            buf.push(M_EVENT_LOG);
            put_u32(&mut buf, rank.0);
            buf.extend_from_slice(&dropped.to_le_bytes());
            put_u32(&mut buf, events.len() as u32);
            for ev in events {
                buf.extend_from_slice(&ev.at_us.to_le_bytes());
                put_str(&mut buf, &ev.kind);
                put_str(&mut buf, &ev.detail);
            }
        }
        Message::CreditGrant { frames, bytes } => {
            buf.push(M_CREDIT_GRANT);
            buf.extend_from_slice(&frames.to_le_bytes());
            buf.extend_from_slice(&bytes.to_le_bytes());
        }
        Message::IncidentMark { reason, subject } => {
            buf.push(M_INCIDENT_MARK);
            buf.push(*reason);
            put_u32(&mut buf, subject.0);
        }
        Message::Event(ev) => {
            buf.push(M_EVENT);
            match ev {
                NetEvent::BackendLost { rank, detected_by } => {
                    buf.push(EV_BACKEND_LOST);
                    put_u32(&mut buf, rank.0);
                    put_u32(&mut buf, detected_by.0);
                }
                NetEvent::BackendJoined { rank, parent } => {
                    buf.push(EV_BACKEND_JOINED);
                    put_u32(&mut buf, rank.0);
                    put_u32(&mut buf, parent.0);
                }
                NetEvent::SubtreeOrphaned { rank, detected_by } => {
                    buf.push(EV_SUBTREE_ORPHANED);
                    put_u32(&mut buf, rank.0);
                    put_u32(&mut buf, detected_by.0);
                }
                NetEvent::FilterError { rank, detail } => {
                    buf.push(EV_FILTER_ERROR);
                    put_u32(&mut buf, rank.0);
                    put_str(&mut buf, detail);
                }
                NetEvent::SendFailed { rank, peer } => {
                    buf.push(EV_SEND_FAILED);
                    put_u32(&mut buf, rank.0);
                    put_u32(&mut buf, peer.0);
                }
                NetEvent::Healed {
                    rank,
                    adopted,
                    recovery_us,
                } => {
                    buf.push(EV_HEALED);
                    put_u32(&mut buf, rank.0);
                    buf.extend_from_slice(&recovery_us.to_le_bytes());
                    put_u32(&mut buf, adopted.len() as u32);
                    for r in adopted {
                        put_u32(&mut buf, r.0);
                    }
                }
                NetEvent::Degraded { rank, detail } => {
                    buf.push(EV_DEGRADED);
                    put_u32(&mut buf, rank.0);
                    put_str(&mut buf, detail);
                }
                NetEvent::HealthWarning {
                    rank,
                    subject,
                    signal,
                    value,
                    baseline,
                } => {
                    buf.push(EV_HEALTH_WARNING);
                    put_u32(&mut buf, rank.0);
                    put_u32(&mut buf, subject.0);
                    buf.push(*signal);
                    buf.extend_from_slice(&value.to_le_bytes());
                    buf.extend_from_slice(&baseline.to_le_bytes());
                }
            }
        }
    }
    buf
}

/// Exact length [`encode_message`] will produce; used as the size hint for
/// zero-copy frames so shaping charges honest costs.
pub fn message_encoded_len(msg: &Message) -> usize {
    match msg {
        Message::Up { value, .. } | Message::Down { value, .. } => 1 + 28 + value.encoded_len(),
        Message::NewStream {
            members,
            transformation,
            params,
            sync_name,
            sync_params,
            downstream_filter,
            downstream_params,
            ..
        } => {
            1 + 4
                + 4
                + 4 * members.len()
                + 4
                + transformation.len()
                + params.encoded_len()
                + 4
                + sync_name.len()
                + sync_params.encoded_len()
                + 1
                + downstream_filter.as_ref().map_or(0, |n| 4 + n.len())
                + downstream_params.encoded_len()
                + 1
        }
        Message::CloseStream { .. } => 1 + 4,
        Message::LoadFilter { name, .. } => 1 + 4 + name.len() + 1,
        Message::LoadFilterAck { name, .. } => 1 + 4 + name.len() + 1,
        Message::Shutdown => 1,
        Message::ShutdownAck { .. } => 1 + 4,
        Message::Adopt { .. } | Message::NewParent { .. } | Message::ReconfigAck { .. } => 1 + 4,
        Message::StreamPrune { .. } => 1 + 4,
        Message::GetPerf => 1,
        Message::PerfReport { .. } => 1 + 4 + PERF_COUNTERS_WIRE_LEN,
        Message::GetEvents => 1,
        Message::CreditGrant { .. } => 1 + 8 + 8,
        Message::IncidentMark { .. } => 1 + 1 + 4,
        Message::EventLog { events, .. } => {
            1 + 4
                + 8
                + 4
                + events
                    .iter()
                    .map(|ev| 8 + 4 + ev.kind.len() + 4 + ev.detail.len())
                    .sum::<usize>()
        }
        Message::Event(ev) => {
            2 + match ev {
                NetEvent::BackendLost { .. }
                | NetEvent::BackendJoined { .. }
                | NetEvent::SubtreeOrphaned { .. }
                | NetEvent::SendFailed { .. } => 8,
                NetEvent::FilterError { detail, .. } => 4 + 4 + detail.len(),
                NetEvent::Healed { adopted, .. } => 4 + 8 + 4 + 4 * adopted.len(),
                NetEvent::Degraded { detail, .. } => 4 + 4 + detail.len(),
                NetEvent::HealthWarning { .. } => 4 + 4 + 1 + 8 + 8,
            }
        }
    }
}

/// Decode one message, requiring all bytes consumed.
pub fn decode_message(bytes: &[u8]) -> Result<Message> {
    let mut r = Reader::new(bytes);
    let msg = decode_message_inner(&mut r)?;
    if r.remaining() != 0 {
        return Err(TbonError::Decode(format!(
            "{} trailing bytes after message",
            r.remaining()
        )));
    }
    Ok(msg)
}

fn decode_message_inner(r: &mut Reader<'_>) -> Result<Message> {
    let tag = r.u8()?;
    Ok(match tag {
        M_UP | M_DOWN => {
            let stream = StreamId(r.u32()?);
            let ptag = Tag(r.u32()?);
            let origin = Rank(r.u32()?);
            let sent_us = r.u64()?;
            let trace = r.u64()?;
            let value = r.value()?;
            if tag == M_UP {
                Message::Up {
                    stream,
                    tag: ptag,
                    origin,
                    sent_us,
                    trace,
                    value,
                }
            } else {
                Message::Down {
                    stream,
                    tag: ptag,
                    origin,
                    sent_us,
                    trace,
                    value,
                }
            }
        }
        M_NEW_STREAM => {
            let stream = StreamId(r.u32()?);
            let n = r.len_prefix(4)?;
            let mut members = Vec::with_capacity(n);
            for _ in 0..n {
                members.push(Rank(r.u32()?));
            }
            let transformation = r.str()?;
            let params = r.value()?;
            let sync_name = r.str()?;
            let sync_params = r.value()?;
            let downstream_filter = match r.u8()? {
                0 => None,
                1 => Some(r.str()?),
                other => {
                    return Err(TbonError::Decode(format!(
                        "bad option flag {other} in NewStream"
                    )))
                }
            };
            let downstream_params = r.value()?;
            let mode = match r.u8()? {
                0 => StreamMode::Upstream,
                1 => StreamMode::Bidirectional,
                other => return Err(TbonError::Decode(format!("bad stream mode {other}"))),
            };
            Message::NewStream {
                stream,
                members,
                transformation,
                params,
                sync_name,
                sync_params,
                downstream_filter,
                downstream_params,
                mode,
            }
        }
        M_CLOSE_STREAM => Message::CloseStream {
            stream: StreamId(r.u32()?),
        },
        M_LOAD_FILTER => {
            let name = r.str()?;
            let kind = match r.u8()? {
                0 => FilterKind::Transformation,
                1 => FilterKind::Synchronization,
                other => return Err(TbonError::Decode(format!("bad filter kind {other}"))),
            };
            Message::LoadFilter { name, kind }
        }
        M_LOAD_FILTER_ACK => {
            let name = r.str()?;
            let ok = r.u8()? != 0;
            Message::LoadFilterAck { name, ok }
        }
        M_SHUTDOWN => Message::Shutdown,
        M_SHUTDOWN_ACK => Message::ShutdownAck {
            rank: Rank(r.u32()?),
        },
        M_ADOPT => Message::Adopt {
            child: Rank(r.u32()?),
        },
        M_NEW_PARENT => Message::NewParent {
            parent: Rank(r.u32()?),
        },
        M_RECONFIG_ACK => Message::ReconfigAck {
            rank: Rank(r.u32()?),
        },
        M_STREAM_PRUNE => Message::StreamPrune {
            stream: StreamId(r.u32()?),
        },
        M_GET_PERF => Message::GetPerf,
        M_PERF_REPORT => {
            let rank = Rank(r.u32()?);
            let counters = decode_perf_counters(r)?;
            Message::PerfReport { rank, counters }
        }
        M_GET_EVENTS => Message::GetEvents,
        M_EVENT_LOG => {
            let rank = Rank(r.u32()?);
            let dropped = r.u64()?;
            let n = r.len_prefix(16)?;
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                let at_us = r.u64()?;
                let kind = r.str()?;
                let detail = r.str()?;
                events.push(LoggedEvent {
                    at_us,
                    kind,
                    detail,
                });
            }
            Message::EventLog {
                rank,
                events,
                dropped,
            }
        }
        M_CREDIT_GRANT => Message::CreditGrant {
            frames: r.u64()?,
            bytes: r.u64()?,
        },
        M_INCIDENT_MARK => Message::IncidentMark {
            reason: r.u8()?,
            subject: Rank(r.u32()?),
        },
        M_EVENT => {
            let ev_tag = r.u8()?;
            let ev = match ev_tag {
                EV_BACKEND_LOST => NetEvent::BackendLost {
                    rank: Rank(r.u32()?),
                    detected_by: Rank(r.u32()?),
                },
                EV_BACKEND_JOINED => NetEvent::BackendJoined {
                    rank: Rank(r.u32()?),
                    parent: Rank(r.u32()?),
                },
                EV_SUBTREE_ORPHANED => NetEvent::SubtreeOrphaned {
                    rank: Rank(r.u32()?),
                    detected_by: Rank(r.u32()?),
                },
                EV_FILTER_ERROR => NetEvent::FilterError {
                    rank: Rank(r.u32()?),
                    detail: r.str()?,
                },
                EV_SEND_FAILED => NetEvent::SendFailed {
                    rank: Rank(r.u32()?),
                    peer: Rank(r.u32()?),
                },
                EV_HEALED => {
                    let rank = Rank(r.u32()?);
                    let recovery_us = r.u64()?;
                    let n = r.u32()? as usize;
                    let mut adopted = Vec::with_capacity(n.min(4096));
                    for _ in 0..n {
                        adopted.push(Rank(r.u32()?));
                    }
                    NetEvent::Healed {
                        rank,
                        adopted,
                        recovery_us,
                    }
                }
                EV_DEGRADED => NetEvent::Degraded {
                    rank: Rank(r.u32()?),
                    detail: r.str()?,
                },
                EV_HEALTH_WARNING => NetEvent::HealthWarning {
                    rank: Rank(r.u32()?),
                    subject: Rank(r.u32()?),
                    signal: r.u8()?,
                    value: r.u64()?,
                    baseline: r.u64()?,
                },
                other => return Err(TbonError::Decode(format!("unknown event tag {other}"))),
            };
            Message::Event(ev)
        }
        other => return Err(TbonError::Decode(format!("unknown message tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let bytes = encode_message(&msg);
        assert_eq!(
            bytes.len(),
            message_encoded_len(&msg),
            "encoded length mismatch for {msg:?}"
        );
        let back = decode_message(&bytes).unwrap();
        assert_eq!(msg, back);
    }

    #[test]
    fn roundtrip_data_messages() {
        roundtrip(Message::Up {
            stream: StreamId(3),
            tag: Tag(9),
            origin: Rank(12),
            sent_us: 123_456,
            trace: 0xABCD_EF01_2345_6789,
            value: DataValue::ArrayF64(vec![1.0, 2.0, 3.0]),
        });
        roundtrip(Message::Down {
            stream: StreamId(0),
            tag: Tag(u32::MAX),
            origin: Rank(0),
            sent_us: 0,
            trace: 0,
            value: DataValue::Unit,
        });
    }

    #[test]
    fn roundtrip_new_stream_variants() {
        roundtrip(Message::NewStream {
            stream: StreamId(7),
            members: vec![Rank(1), Rank(2), Rank(9)],
            transformation: "builtin::sum".into(),
            params: DataValue::Tuple(vec![DataValue::I64(1)]),
            sync_name: "sync::time_out".into(),
            sync_params: DataValue::U64(100),
            downstream_filter: Some("core::identity".into()),
            downstream_params: DataValue::Unit,
            mode: StreamMode::Bidirectional,
        });
        roundtrip(Message::NewStream {
            stream: StreamId(8),
            members: vec![],
            transformation: String::new(),
            params: DataValue::Unit,
            sync_name: "sync::null".into(),
            sync_params: DataValue::Unit,
            downstream_filter: None,
            downstream_params: DataValue::Unit,
            mode: StreamMode::Upstream,
        });
    }

    #[test]
    fn roundtrip_control_messages() {
        roundtrip(Message::CloseStream {
            stream: StreamId(5),
        });
        roundtrip(Message::LoadFilter {
            name: "user::thing".into(),
            kind: FilterKind::Transformation,
        });
        roundtrip(Message::LoadFilter {
            name: "s".into(),
            kind: FilterKind::Synchronization,
        });
        roundtrip(Message::LoadFilterAck {
            name: "user::thing".into(),
            ok: true,
        });
        roundtrip(Message::Shutdown);
        roundtrip(Message::ShutdownAck { rank: Rank(17) });
    }

    #[test]
    fn roundtrip_events() {
        roundtrip(Message::Event(NetEvent::BackendLost {
            rank: Rank(4),
            detected_by: Rank(1),
        }));
        roundtrip(Message::Event(NetEvent::BackendJoined {
            rank: Rank(10),
            parent: Rank(2),
        }));
        roundtrip(Message::Event(NetEvent::SubtreeOrphaned {
            rank: Rank(6),
            detected_by: Rank(0),
        }));
        roundtrip(Message::Event(NetEvent::FilterError {
            rank: Rank(3),
            detail: "no such filter".into(),
        }));
        roundtrip(Message::Event(NetEvent::SendFailed {
            rank: Rank(1),
            peer: Rank(8),
        }));
        roundtrip(Message::Event(NetEvent::Healed {
            rank: Rank(7),
            adopted: vec![Rank(3), Rank(4), Rank(11)],
            recovery_us: 123_456_789,
        }));
        roundtrip(Message::Event(NetEvent::Healed {
            rank: Rank(2),
            adopted: Vec::new(),
            recovery_us: 0,
        }));
        roundtrip(Message::Event(NetEvent::Degraded {
            rank: Rank(5),
            detail: "retry budget exhausted".into(),
        }));
        roundtrip(Message::Event(NetEvent::HealthWarning {
            rank: Rank(3),
            subject: Rank(11),
            signal: 4,
            value: 9_000,
            baseline: 1_200,
        }));
        roundtrip(Message::Adopt { child: Rank(9) });
        roundtrip(Message::NewParent { parent: Rank(2) });
        roundtrip(Message::ReconfigAck { rank: Rank(5) });
        roundtrip(Message::StreamPrune {
            stream: StreamId(8),
        });
        roundtrip(Message::GetPerf);
        roundtrip(Message::GetEvents);
        roundtrip(Message::EventLog {
            rank: Rank(6),
            events: vec![
                LoggedEvent {
                    at_us: 42,
                    kind: "stream_open".into(),
                    detail: "stream 3".into(),
                },
                LoggedEvent {
                    at_us: 99,
                    kind: "backend_lost".into(),
                    detail: String::new(),
                },
            ],
            dropped: 7,
        });
        roundtrip(Message::EventLog {
            rank: Rank(0),
            events: vec![],
            dropped: 0,
        });
        roundtrip(Message::PerfReport {
            rank: Rank(3),
            counters: PerfCounters {
                packets_up: 10,
                packets_down: 20,
                waves: 5,
                filter_out: 6,
                filter_ns: 123456,
                control: 9,
                frames_sent: 31,
                bytes_sent: 4096,
                encodes_performed: 7,
                sends_dropped: 2,
                waves_executed: 4,
                filter_busy_us: 321,
                batches_sent: 11,
                frames_batched: 29,
                credits_stalled_us: 4200,
                grants_sent: 13,
                window_closed: 3,
                health_warnings: 2,
            },
        });
        roundtrip(Message::CreditGrant {
            frames: 16,
            bytes: 65_536,
        });
        roundtrip(Message::CreditGrant {
            frames: 0,
            bytes: 0,
        });
        roundtrip(Message::IncidentMark {
            reason: 3,
            subject: Rank(12),
        });
    }

    #[test]
    fn envelope_encodes_once_and_shares_bytes() {
        let env = Envelope::new(Message::Up {
            stream: StreamId(1),
            tag: Tag(2),
            origin: Rank(3),
            sent_us: 0,
            trace: 0,
            value: DataValue::ArrayF64(vec![0.5; 64]),
        });
        assert_eq!(env.encoded_len(), message_encoded_len(env.msg()));
        let (first, fresh_first) = env.encoded();
        assert!(fresh_first);
        let first = Arc::clone(first);
        let (second, fresh_second) = env.encoded();
        assert!(!fresh_second);
        assert!(Arc::ptr_eq(&first, second), "memo must be shared");
        assert_eq!(env.encoded_len(), first.len());
        assert_eq!(decode_message(&first).unwrap(), *env.msg());
    }

    #[test]
    fn truncation_rejected() {
        let full = encode_message(&Message::NewStream {
            stream: StreamId(7),
            members: vec![Rank(1), Rank(2)],
            transformation: "builtin::sum".into(),
            params: DataValue::Unit,
            sync_name: "sync::wait_for_all".into(),
            sync_params: DataValue::Unit,
            downstream_filter: None,
            downstream_params: DataValue::Unit,
            mode: StreamMode::Upstream,
        });
        for cut in 0..full.len() {
            assert!(decode_message(&full[..cut]).is_err(), "prefix {cut}");
        }
    }

    #[test]
    fn unknown_message_tag_rejected() {
        assert!(decode_message(&[99]).is_err());
    }

    #[test]
    fn packet_conversion_preserves_fields() {
        let pkt = Packet::traced(StreamId(2), Tag(5), Rank(7), 777, 991, DataValue::I64(42));
        match Message::up_from_packet(&pkt) {
            Message::Up {
                stream,
                tag,
                origin,
                sent_us,
                trace,
                value,
            } => {
                assert_eq!(stream, StreamId(2));
                assert_eq!(tag, Tag(5));
                assert_eq!(origin, Rank(7));
                assert_eq!(sent_us, 777);
                assert_eq!(trace, 991);
                assert_eq!(value, DataValue::I64(42));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            Message::down_from_packet(&pkt),
            Message::Down { trace: 991, .. }
        ));
    }
}
