//! # tbon-core — the TBON computational model
//!
//! An MRNet-style tree-based overlay network runtime, reproducing the model
//! of *"Tree-based Overlay Networks for Scalable Applications"* (Arnold,
//! Pack & Miller, IPPS 2006):
//!
//! * a **front-end** application process at the root of a tree of
//!   **communication processes**, with **back-end** application processes at
//!   the leaves, connected by FIFO channels ([`tbon_transport`]);
//! * **streams** — virtual channels between the front-end and a subset of
//!   back-ends, carrying tagged, typed packets;
//! * **transformation filters** reducing in-flight data at every process,
//!   and **synchronization filters** (`wait_for_all`, `time_out`, `null`)
//!   aligning packet waves, both instantiated by name from a
//!   [`FilterRegistry`] that supports on-demand loading into a running
//!   network;
//! * counted packet references (zero-copy multicast), dynamic back-end
//!   attach, failure detection, and orderly tree-wide shutdown.
//!
//! The crate is transport- and topology-agnostic: shapes come from
//! [`tbon_topology`], channels from [`tbon_transport`], and aggregate
//! filters (sum/min/max/equivalence classes/...) from `tbon-filters`.

pub mod backend;
pub mod codec;
pub mod config;
pub mod consumer;
pub mod error;
mod executor;
pub mod filter;
pub mod fmt;
pub mod health;
pub mod network;
pub mod packet;
mod process;
pub mod proto;
pub mod stream;
mod supervisor;
pub mod telemetry;
pub mod trace;
pub mod value;

pub use backend::{BackendContext, BackendEvent, BackendStream};
pub use config::{
    FilterPoolConfig, FlowConfig, HealthConfig, NetworkConfig, RetryPolicy, TraceConfig,
};
pub use consumer::{Deadline, StreamConsumer};
pub use error::{Result, TbonError};
pub use filter::{
    FilterContext, FilterRegistry, Identity, NullSync, SyncContext, Synchronization, TimeOut,
    Transformation, WaitForAll, Wave,
};
pub use health::{
    Diagnosis, FaultClass, FlowSummary, HealthMonitor, HealthScore, HealthSignal, Incident,
    IncidentBatch, IncidentBundle, IncidentGather, IncidentReason, Verdict, INCIDENT_FILTER,
};
pub use network::{
    EventSnapshot, IncidentHandle, MetricsHandle, Network, NetworkBuilder, PerfSnapshot,
    StreamHandle, TraceHandle,
};
pub use packet::{Packet, Rank};
pub use proto::{FilterKind, Message, NetEvent, PerfCounters};
pub use stream::{Members, StreamId, StreamMode, StreamSpec, SyncPolicy, Tag};
pub use telemetry::{
    now_us, EventRing, LogHistogram, LoggedEvent, MetricsMerge, MetricsSample, ProcessEvents,
    SpanRing, TraceBatch, TraceGather, TraceSpan, TraceStage, METRICS_FILTER, TRACE_FILTER,
};
pub use trace::{TraceAssembler, WaveTrace};
pub use value::DataValue;
