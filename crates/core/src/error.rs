//! Error type shared across the TBON runtime.

use std::fmt;

use tbon_topology::TopologyError;
use tbon_transport::TransportError;

use crate::stream::StreamId;

/// Everything that can go wrong in the runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum TbonError {
    /// A transport-level failure (socket closed, peer gone, ...).
    Transport(TransportError),
    /// A topology construction or mutation failure.
    Topology(TopologyError),
    /// A stream referenced a transformation or synchronization filter name
    /// that is not in the registry (the moral equivalent of a failed
    /// `dlopen`).
    UnknownFilter(String),
    /// The stream is closed or was never created.
    StreamClosed(StreamId),
    /// Malformed bytes on the wire.
    Decode(String),
    /// The network has shut down or its runtime thread is gone.
    NetworkDown,
    /// A blocking receive timed out.
    Timeout,
    /// A filter reported a failure while transforming a wave.
    Filter(String),
    /// A stream specification resolved to an invalid member set.
    BadMembers(String),
    /// An operation is not valid in the current state (e.g. attaching a
    /// back-end under another back-end).
    Invalid(String),
}

impl TbonError {
    /// Whether retrying the operation later could plausibly succeed:
    /// timeouts and transient transport faults (backpressure, I/O hiccups).
    /// The supervisor — and any caller with its own retry loop — branches
    /// on this instead of string-matching variants. The send path honors
    /// the same contract: with credit flow control on
    /// ([`crate::FlowConfig::enabled`]) a backpressured downstream frame is
    /// buffered behind the closed window and retried on the next
    /// [`crate::Message::CreditGrant`], not escalated to a child death.
    pub fn is_transient(&self) -> bool {
        match self {
            TbonError::Timeout => true,
            TbonError::Transport(e) => e.is_transient(),
            _ => false,
        }
    }

    /// Whether the failure is permanent: retrying cannot help (unknown
    /// peer, closed stream, invalid operation, the network is gone, ...).
    pub fn is_fatal(&self) -> bool {
        !self.is_transient()
    }
}

impl fmt::Display for TbonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TbonError::Transport(e) => write!(f, "transport: {e}"),
            TbonError::Topology(e) => write!(f, "topology: {e}"),
            TbonError::UnknownFilter(n) => write!(f, "unknown filter '{n}'"),
            TbonError::StreamClosed(s) => write!(f, "stream {s:?} is closed"),
            TbonError::Decode(m) => write!(f, "decode error: {m}"),
            TbonError::NetworkDown => write!(f, "network is down"),
            TbonError::Timeout => write!(f, "operation timed out"),
            TbonError::Filter(m) => write!(f, "filter error: {m}"),
            TbonError::BadMembers(m) => write!(f, "bad stream members: {m}"),
            TbonError::Invalid(m) => write!(f, "invalid operation: {m}"),
        }
    }
}

impl std::error::Error for TbonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TbonError::Transport(e) => Some(e),
            TbonError::Topology(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransportError> for TbonError {
    fn from(e: TransportError) -> Self {
        TbonError::Transport(e)
    }
}

impl From<TopologyError> for TbonError {
    fn from(e: TopologyError) -> Self {
        TbonError::Topology(e)
    }
}

/// Shorthand used throughout the crate.
pub type Result<T> = std::result::Result<T, TbonError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<TbonError> = vec![
            TbonError::Transport(TransportError::Closed(3)),
            TbonError::Topology(TopologyError::NotATree),
            TbonError::UnknownFilter("x".into()),
            TbonError::StreamClosed(StreamId(9)),
            TbonError::Decode("boom".into()),
            TbonError::NetworkDown,
            TbonError::Timeout,
            TbonError::Filter("f".into()),
            TbonError::BadMembers("m".into()),
            TbonError::Invalid("i".into()),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn taxonomy_classifies_transient_vs_fatal() {
        // Transient: worth a retry. Backpressure in particular is what the
        // flow-controlled send path recovers from by parking the frame
        // until the child grants credit — it must never classify as fatal.
        assert!(TbonError::Timeout.is_transient());
        assert!(TbonError::Transport(TransportError::Backpressure(4)).is_transient());
        assert!(TbonError::Transport(TransportError::Io("reset".into())).is_transient());
        // Fatal: retrying cannot help.
        for fatal in [
            TbonError::Transport(TransportError::Closed(3)),
            TbonError::Transport(TransportError::UnknownPeer(7)),
            TbonError::NetworkDown,
            TbonError::StreamClosed(StreamId(1)),
            TbonError::Invalid("nope".into()),
        ] {
            assert!(fatal.is_fatal(), "{fatal} should be fatal");
            assert!(!fatal.is_transient());
        }
    }

    #[test]
    fn source_is_preserved_for_wrapped_errors() {
        use std::error::Error;
        let e = TbonError::from(TransportError::Closed(1));
        assert!(e.source().is_some());
        assert!(TbonError::Timeout.source().is_none());
    }
}
