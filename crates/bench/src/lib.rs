//! Shared harness utilities for the experiment binaries: table formatting,
//! repeated timing, deep-topology construction, and calibration of the
//! simulator's mean-shift cost model against the real implementation.

use std::time::{Duration, Instant};

use tbon_meanshift::{density_seeds, mean_shift, MeanShiftParams, Point2, SpatialGrid, SynthSpec};
use tbon_sim::MsCostModel;
use tbon_topology::Topology;

/// Render an aligned text table: header row + data rows.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>width$}", cell, width = widths[i]));
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Format seconds with sensible precision.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Run `f` `reps` times and return the mean duration (the paper ran each
/// experiment "two to four times" and plotted the average).
pub fn mean_time(reps: usize, mut f: impl FnMut()) -> Duration {
    assert!(reps > 0);
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed() / reps as u32
}

/// Front-end work per incoming record: fold into the running aggregate,
/// then pay the tool's per-record consumption cost (a spin, not a sleep,
/// to model CPU-bound tool-side processing).
pub fn fold(acc: &mut [f64], record: &[f64], record_cost: Duration) {
    for (a, r) in acc.iter_mut().zip(record) {
        *a += r;
    }
    let end = Instant::now() + record_cost;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

/// The "deep" (2-level) tree the paper pairs against a flat tree of the
/// same leaf count: per-level fan-outs as close to `sqrt(leaves)` as
/// divisibility allows.
pub fn deep_tree_for(leaves: usize) -> Topology {
    assert!(leaves >= 4, "a 2-deep tree needs at least 4 leaves");
    let ideal = (leaves as f64).sqrt().round() as i64;
    // The divisor of `leaves` nearest to sqrt(leaves), excluding the
    // degenerate 1 and `leaves` split.
    let mut best: Option<usize> = None;
    for f in 2..leaves {
        if leaves.is_multiple_of(f) {
            let better = match best {
                None => true,
                Some(b) => (f as i64 - ideal).abs() < (b as i64 - ideal).abs(),
            };
            if better {
                best = Some(f);
            }
        }
    }
    let f1 = best.unwrap_or(leaves); // prime leaf counts degrade to flat+1
    let f2 = leaves / f1;
    if f2 <= 1 {
        return Topology::flat(leaves);
    }
    Topology::balanced_levels(&[f1, f2])
}

/// Measured characteristics of the real mean-shift implementation, used to
/// set the simulator's cost constants.
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    pub model: MsCostModel,
    pub leaf_seconds_measured: f64,
}

/// Calibrate [`MsCostModel`] by running the real single-leaf pipeline and
/// timing its phases. `era_scale` rescales to the paper's hardware
/// (1.0 = this machine).
pub fn calibrate(spec: &SynthSpec, params: &MeanShiftParams, era_scale: f64) -> Calibration {
    let data = spec.generate(0);
    let n = data.len() as f64;

    // Grid build cost.
    let t0 = Instant::now();
    let grid = SpatialGrid::build(data.clone(), params.bandwidth);
    let build_total = t0.elapsed().as_secs_f64();

    // Window occupancy: average fraction of the dataset inside one window,
    // sampled at the cluster centers (where searches actually iterate).
    let occ: f64 = spec
        .centers
        .iter()
        .map(|c| grid.count_in_radius(*c, params.bandwidth) as f64 / n)
        .sum::<f64>()
        / spec.centers.len() as f64;

    // Density scan cost and seed count.
    let t1 = Instant::now();
    let seeds = density_seeds(&grid, params);
    let scan_total = t1.elapsed().as_secs_f64();
    let step = params.scan_step();
    let (min, max) = grid.bounds().expect("non-empty data");
    let cells = (((max.x - min.x) / step) + 1.0) * (((max.y - min.y) / step) + 1.0);

    // Search cost per window visit and mean iterations.
    let t2 = Instant::now();
    let mut total_iters = 0usize;
    for &s in &seeds {
        let out = mean_shift(
            &grid,
            s,
            params.bandwidth,
            params.kernel,
            params.max_iterations,
            params.convergence_eps,
        );
        total_iters += out.iterations.max(1);
    }
    let search_total = t2.elapsed().as_secs_f64();
    let visits = total_iters as f64 * occ * n;

    // Warm-start iteration count: restart from converged points.
    let restarts: Vec<Point2> = seeds.iter().take(8).copied().collect();
    let mut warm_iters = 0usize;
    for s in &restarts {
        let first = mean_shift(
            &grid,
            *s,
            params.bandwidth,
            params.kernel,
            params.max_iterations,
            params.convergence_eps,
        );
        let again = mean_shift(
            &grid,
            first.peak,
            params.bandwidth,
            params.kernel,
            params.max_iterations,
            params.convergence_eps,
        );
        warm_iters += again.iterations.max(1);
    }
    let iters_merge = if restarts.is_empty() {
        2.0
    } else {
        (warm_iters as f64 / restarts.len() as f64).max(1.0)
    };

    let model = MsCostModel {
        build_per_point: (build_total / n).max(1e-12),
        visit_cost: (search_total / visits.max(1.0)).max(1e-12),
        scan_visit_cost: (scan_total / (cells * occ * n).max(1.0)).max(1e-13),
        scan_cells: cells,
        window_occupancy: occ,
        seeds_per_leaf: seeds.len().max(1) as f64,
        peaks: spec.centers.len() as f64,
        iters_leaf: total_iters as f64 / seeds.len().max(1) as f64,
        iters_merge,
        points_per_leaf: n,
        era_scale,
    };
    Calibration {
        model,
        leaf_seconds_measured: build_total + scan_total + search_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["scale", "time"],
            &[
                vec!["16".into(), "1.5".into()],
                vec!["324".into(), "12.25".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("scale"));
        assert!(lines[3].trim_start().starts_with("324"));
    }

    #[test]
    fn deep_tree_for_perfect_squares() {
        let t = deep_tree_for(256);
        assert_eq!(t.leaf_count(), 256);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.children(t.root()).len(), 16);
    }

    #[test]
    fn deep_tree_for_awkward_counts() {
        for n in [4usize, 12, 48, 100, 324] {
            let t = deep_tree_for(n);
            assert_eq!(t.leaf_count(), n, "n={n}");
            assert_eq!(t.depth(), 2, "n={n}");
        }
    }

    #[test]
    fn mean_time_averages() {
        let d = mean_time(4, || std::thread::sleep(Duration::from_millis(2)));
        assert!(d >= Duration::from_millis(2));
        assert!(d < Duration::from_millis(50));
    }

    #[test]
    fn calibration_produces_positive_constants() {
        let spec = SynthSpec {
            points_per_cluster: 100,
            ..SynthSpec::paper_default()
        };
        let cal = calibrate(&spec, &MeanShiftParams::default(), 1.0);
        let m = cal.model;
        assert!(m.build_per_point > 0.0);
        assert!(m.visit_cost > 0.0);
        assert!(m.window_occupancy > 0.0 && m.window_occupancy < 1.0);
        assert!(m.seeds_per_leaf >= 1.0);
        assert!(m.iters_leaf >= 1.0);
        assert!(m.iters_merge >= 1.0);
        assert!(cal.leaf_seconds_measured > 0.0);
    }
}
