//! Aggregate filter-wave throughput with the parallel execution plane.
//!
//! One root, fan-out 8, four concurrent streams whose transformation costs
//! a fixed amount per wave. The pooled configuration (4 pool workers, one
//! per stream) must reach at least twice the aggregate wave throughput of
//! the inline baseline (`filter_pool.workers = 0`, the pre-pool behavior),
//! while a single stream of small waves — which takes the inline fast path
//! even with the pool on — must not regress more than 5%.
//!
//! Prints a `BENCH_filter.json` document to stdout:
//!
//! ```sh
//! cargo run --release -p tbon-bench --bin filter_wave_throughput -- \
//!     --waves 60 --reps 3 --date "$(date -I)" > results/BENCH_filter.json
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use tbon_core::{
    BackendContext, BackendEvent, DataValue, FilterContext, FilterRegistry, NetworkBuilder,
    NetworkConfig, Packet, StreamConsumer, StreamSpec, Tag, Transformation,
};
use tbon_filters::builtin_registry;
use tbon_topology::Topology;

const FANOUT: usize = 8;
const STREAMS: usize = 4;

/// A transformation with a fixed execution cost per wave, then a trivial
/// sum. The cost is spent sleeping, not spinning: it models a filter whose
/// wave execution takes a fixed amount of time (an I/O-backed lookup, a
/// fixed-latency model evaluation), which is also the only cost the pool
/// can overlap on the single-core CI container — a spin-bound filter there
/// would serialize on the one CPU no matter how many workers exist.
struct FixedCost {
    cost: Duration,
}

impl Transformation for FixedCost {
    fn transform(
        &mut self,
        wave: Vec<Packet>,
        ctx: &mut FilterContext,
    ) -> tbon_core::Result<Vec<Packet>> {
        if !self.cost.is_zero() {
            std::thread::sleep(self.cost);
        }
        let sum: i64 = wave.iter().filter_map(|p| p.value().as_i64()).sum();
        let tag = wave.first().map(|p| p.tag()).unwrap_or(Tag(0));
        Ok(vec![ctx.make(tag, DataValue::I64(sum))])
    }
}

fn registry() -> Arc<FilterRegistry> {
    let reg = builtin_registry();
    reg.register_transformation("bench::fixed_cost", |params: &DataValue| {
        let cost_us = params.as_u64().unwrap_or(0);
        Ok(Box::new(FixedCost {
            cost: Duration::from_micros(cost_us),
        }))
    });
    reg
}

/// Back-ends: a `Unit` trigger starts a burst of `waves` I64 waves on that
/// stream; any other packet is echoed with a single reply (ping-pong, for
/// the latency phase).
fn backend_loop(waves: usize) -> impl Fn(BackendContext) + Send + Sync {
    move |mut ctx: BackendContext| loop {
        match ctx.next_event() {
            Ok(BackendEvent::Packet { stream, packet }) => match packet.value() {
                DataValue::Unit => {
                    for w in 0..waves {
                        if ctx.send(stream, Tag(w as u32), DataValue::I64(1)).is_err() {
                            return;
                        }
                    }
                }
                _ => {
                    if ctx.send(stream, packet.tag(), DataValue::I64(1)).is_err() {
                        return;
                    }
                }
            },
            Ok(BackendEvent::Shutdown) | Err(_) => break,
            Ok(_) => continue,
        }
    }
}

fn config(workers: usize, pool_everything: bool) -> NetworkConfig {
    let mut cfg = NetworkConfig {
        name: "fwt".into(),
        ..NetworkConfig::default()
    };
    // One worker per concurrent stream so the comparison measures the
    // plane's ceiling, not an undersized pool.
    cfg.filter_pool.workers = workers;
    if pool_everything {
        // The aggregate phase's waves are small but expensive — the
        // opposite of what the size heuristic assumes — so pool them all.
        cfg.filter_pool.inline_below_bytes = 0;
    }
    cfg
}

/// Aggregate throughput: `STREAMS` concurrent streams, each carrying
/// `waves` waves whose root-side filter costs `cost` apiece. Returns total
/// waves per second across all streams.
fn run_aggregate(workers: usize, waves: usize, cost: Duration) -> f64 {
    let mut net = NetworkBuilder::new(Topology::flat(FANOUT))
        .registry(registry())
        .config(config(workers, true))
        .backend(backend_loop(waves))
        .launch()
        .expect("launch");
    let streams: Vec<_> = (0..STREAMS)
        .map(|_| {
            net.new_stream(
                StreamSpec::all()
                    .transformation("bench::fixed_cost")
                    .params(DataValue::U64(cost.as_micros() as u64)),
            )
            .expect("stream")
        })
        .collect();
    let start = Instant::now();
    for s in &streams {
        s.broadcast(Tag(0), DataValue::Unit).expect("trigger");
    }
    for s in &streams {
        for _ in 0..waves {
            s.recv_within(Duration::from_secs(300))
                .unwrap()
                .expect("wave");
        }
    }
    let elapsed = start.elapsed();
    net.shutdown().expect("shutdown");
    (STREAMS * waves) as f64 / elapsed.as_secs_f64()
}

/// Single-stream ping-pong latency: one small wave in flight at a time, so
/// the inline fast path governs. Returns mean seconds per wave.
fn run_latency(workers: usize, waves: usize, cost: Duration) -> f64 {
    let mut net = NetworkBuilder::new(Topology::flat(FANOUT))
        .registry(registry())
        .config(config(workers, false))
        .backend(backend_loop(waves))
        .launch()
        .expect("launch");
    let stream = net
        .new_stream(
            StreamSpec::all()
                .transformation("bench::fixed_cost")
                .params(DataValue::U64(cost.as_micros() as u64)),
        )
        .expect("stream");
    let start = Instant::now();
    for w in 0..waves {
        stream
            .broadcast(Tag(w as u32), DataValue::I64(0))
            .expect("ping");
        stream
            .recv_within(Duration::from_secs(300))
            .unwrap()
            .expect("pong");
    }
    let elapsed = start.elapsed();
    net.shutdown().expect("shutdown");
    elapsed.as_secs_f64() / waves as f64
}

fn main() {
    let mut waves = 60usize;
    let mut latency_waves = 400usize;
    let mut reps = 3usize;
    let mut cost_us = 2_000u64;
    let mut latency_cost_us = 200u64;
    let mut date = "unknown".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--waves" => waves = it.next().unwrap().parse().unwrap(),
            "--latency-waves" => latency_waves = it.next().unwrap().parse().unwrap(),
            "--reps" => reps = it.next().unwrap().parse().unwrap(),
            "--cost-us" => cost_us = it.next().unwrap().parse().unwrap(),
            "--latency-cost-us" => latency_cost_us = it.next().unwrap().parse().unwrap(),
            "--date" => date = it.next().unwrap(),
            other => panic!("unknown flag {other}"),
        }
    }
    let cost = Duration::from_micros(cost_us);
    let latency_cost = Duration::from_micros(latency_cost_us);

    // Best-of-reps, interleaved so host load drift hits both configs
    // equally instead of skewing whichever ran last.
    let mut best_pooled = 0f64;
    let mut best_inline = 0f64;
    let mut best_lat_pooled = f64::MAX;
    let mut best_lat_inline = f64::MAX;
    for _ in 0..reps {
        best_inline = best_inline.max(run_aggregate(0, waves, cost));
        best_pooled = best_pooled.max(run_aggregate(STREAMS, waves, cost));
        best_lat_inline = best_lat_inline.min(run_latency(0, latency_waves, latency_cost));
        best_lat_pooled = best_lat_pooled.min(run_latency(STREAMS, latency_waves, latency_cost));
    }
    let speedup = best_pooled / best_inline;
    let latency_regression_pct = (best_lat_pooled / best_lat_inline - 1.0) * 100.0;
    let pass = speedup >= 2.0 && latency_regression_pct <= 5.0;
    eprintln!(
        "aggregate: pooled {best_pooled:.1} waves/s vs inline {best_inline:.1} ({speedup:.2}x); \
         latency: pooled {:.0}us vs inline {:.0}us ({latency_regression_pct:+.2}%)",
        best_lat_pooled * 1e6,
        best_lat_inline * 1e6,
    );

    println!("{{");
    println!("  \"bench\": \"filter_wave_throughput\",");
    println!(
        "  \"description\": \"Aggregate wave throughput at the root (fan-out {FANOUT}, {STREAMS} concurrent streams, {waves} waves each, {cost_us}us fixed filter cost per wave) with the filter pool ({STREAMS} workers) vs inline execution (workers=0); plus single-stream ping-pong latency ({latency_waves} waves, {latency_cost_us}us cost) where the inline fast path governs. Best of {reps} interleaved runs.\","
    );
    println!("  \"date\": \"{date}\",");
    println!(
        "  \"harness\": \"cargo run --release -p tbon-bench --bin filter_wave_throughput (offline stubs, single-core container)\","
    );
    println!("  \"acceptance\": {{");
    println!(
        "    \"criterion\": \"pooled aggregate wave throughput >= 2x inline with {STREAMS} concurrent streams; single-stream latency regression <= 5%\","
    );
    println!("    \"measured_speedup\": {speedup:.2},");
    println!("    \"measured_latency_regression_pct\": {latency_regression_pct:.2},");
    println!("    \"pass\": {pass}");
    println!("  }},");
    println!("  \"results\": [");
    println!(
        "    {{ \"config\": \"inline\", \"aggregate_waves_per_s\": {best_inline:.1}, \"single_stream_wave_us\": {:.0} }},",
        best_lat_inline * 1e6
    );
    println!(
        "    {{ \"config\": \"pooled\", \"aggregate_waves_per_s\": {best_pooled:.1}, \"single_stream_wave_us\": {:.0} }}",
        best_lat_pooled * 1e6
    );
    println!("  ],");
    println!(
        "  \"notes\": \"The filter cost is spent in a sleep, modeling a fixed-latency wave execution: on the single-core CI container this is the only cost the pool can overlap, so the speedup measures per-stream execution isolation rather than multicore scaling. The latency phase uses small waves below filter_pool.inline_below_bytes, so both configs execute on the event loop and the comparison bounds the pool's bookkeeping overhead.\""
    );
    println!("}}");
}
