//! E2 (§2.2 in-text): front-end data-processing rate under continuous
//! performance-data flow.
//!
//! "For data aggregation of a moderate flow (performance data of 32
//! functions), the front-end in Paradyn's original one-to-many architecture
//! could not process data at the rate it was being produced by more than 32
//! daemons. Using MRNet, the front-end easily processed the loads offered
//! by 512 daemons."
//!
//! Each back-end emits `waves` records of 32 `f64`s. The one-to-many
//! baseline delivers every raw record to the front-end (null sync,
//! identity), which must fold each record into its running aggregate
//! itself; the TBON version reduces in-tree (`builtin::sum`,
//! wait-for-all), so the front-end folds one record per wave. We report
//! the end-to-end record throughput each design sustains.
//!
//! The front-end pays a per-record *consumption cost* (default 10µs) for
//! every record it processes — the stand-in for Paradyn's per-record tool
//! work (histogram insertion, visualization update), which we do not
//! reimplement. The reduction's point is that the tree hands the front-end
//! one record per wave instead of one per daemon per wave.
//!
//! Usage: `e2_throughput [--waves 200] [--max 512] [--record-cost-us 10]
//!                       [--transport copying|zerocopy|tcp]`

use std::sync::Arc;
use std::time::{Duration, Instant};

use tbon_bench::{fold, render_table};
use tbon_core::{
    BackendContext, BackendEvent, DataValue, NetworkBuilder, StreamConsumer, StreamSpec,
    SyncPolicy, Tag,
};
use tbon_filters::builtin_registry;
use tbon_topology::{stats::required_depth, Topology};
use tbon_transport::{local::LocalTransport, tcp::TcpTransport, Transport};

/// Default transport is the copying one: every hop pays
/// serialization, as the 2006 sockets did. See e1_startup for details.
fn make_transport(kind: &str) -> Arc<dyn Transport> {
    match kind {
        "copying" => Arc::new(LocalTransport::new_copying()),
        "zerocopy" => Arc::new(LocalTransport::new()),
        "tcp" => Arc::new(TcpTransport::new()),
        other => panic!("unknown transport '{other}' (copying|zerocopy|tcp)"),
    }
}

const RECORD_LEN: usize = 32; // "performance data of 32 functions"

fn backend_loop(waves: usize) -> impl Fn(BackendContext) + Send + Sync {
    move |mut ctx: BackendContext| loop {
        match ctx.next_event() {
            Ok(BackendEvent::Packet { stream, .. }) => {
                for w in 0..waves {
                    let record: Vec<f64> = (0..RECORD_LEN)
                        .map(|i| (w * RECORD_LEN + i) as f64)
                        .collect();
                    if ctx
                        .send(stream, Tag(w as u32), DataValue::ArrayF64(record))
                        .is_err()
                    {
                        break;
                    }
                }
            }
            Ok(BackendEvent::Shutdown) | Err(_) => break,
            Ok(_) => continue,
        }
    }
}

/// One-to-many: every raw record reaches the front-end.
fn run_direct(backends: usize, waves: usize, transport: &str, record_cost: Duration) -> Duration {
    let mut net = NetworkBuilder::new(Topology::flat(backends))
        .transport_arc(make_transport(transport))
        .registry(builtin_registry())
        .backend(backend_loop(waves))
        .launch()
        .expect("launch");
    let stream = net
        .new_stream(StreamSpec::all().sync(SyncPolicy::Null))
        .expect("stream");
    let start = Instant::now();
    stream.broadcast(Tag(0), DataValue::Unit).expect("start");
    let mut acc = vec![0.0f64; RECORD_LEN];
    for _ in 0..backends * waves {
        let pkt = stream
            .recv_within(Duration::from_secs(300))
            .unwrap()
            .expect("record");
        fold(
            &mut acc,
            pkt.value().as_array_f64().expect("record"),
            record_cost,
        );
    }
    let elapsed = start.elapsed();
    net.shutdown().expect("shutdown");
    elapsed
}

/// TBON: records reduce in-tree; the front-end folds one per wave.
fn run_tree(
    backends: usize,
    fanout: usize,
    waves: usize,
    transport: &str,
    record_cost: Duration,
) -> Duration {
    let depth = required_depth(fanout, backends).max(1);
    let mut levels = vec![fanout; depth];
    let inner: usize = levels[..depth - 1].iter().product();
    if inner > 0 && backends.is_multiple_of(inner) && backends / inner > 0 {
        levels[depth - 1] = backends / inner;
    }
    let topo = Topology::balanced_levels(&levels);
    let mut net = NetworkBuilder::new(topo)
        .transport_arc(make_transport(transport))
        .registry(builtin_registry())
        .backend(backend_loop(waves))
        .launch()
        .expect("launch");
    let stream = net
        .new_stream(StreamSpec::all().transformation("builtin::sum"))
        .expect("stream");
    let start = Instant::now();
    stream.broadcast(Tag(0), DataValue::Unit).expect("start");
    let mut acc = vec![0.0f64; RECORD_LEN];
    for _ in 0..waves {
        let pkt = stream
            .recv_within(Duration::from_secs(300))
            .unwrap()
            .expect("wave");
        fold(
            &mut acc,
            pkt.value().as_array_f64().expect("wave record"),
            record_cost,
        );
    }
    let elapsed = start.elapsed();
    net.shutdown().expect("shutdown");
    elapsed
}

fn main() {
    let mut waves = 200usize;
    let mut max = 512usize;
    let mut transport = "copying".to_string();
    let mut record_cost_us = 10u64;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--waves" => waves = it.next().unwrap().parse().unwrap(),
            "--max" => max = it.next().unwrap().parse().unwrap(),
            "--transport" => transport = it.next().unwrap(),
            "--record-cost-us" => record_cost_us = it.next().unwrap().parse().unwrap(),
            other => panic!("unknown flag {other}"),
        }
    }

    println!("E2: front-end processing rate, one-to-many vs TBON (§2.2)");
    println!(
        "{waves} waves of {RECORD_LEN}-function records per back-end, fan-out 8 tree, transport: {transport}, record cost: {record_cost_us}us"
    );
    println!();

    let mut rows = Vec::new();
    let mut scale = 8usize;
    while scale <= max {
        let record_cost = Duration::from_micros(record_cost_us);
        let direct = run_direct(scale, waves, &transport, record_cost);
        let tree = run_tree(scale, 8, waves, &transport, record_cost);
        let direct_rate = (scale * waves) as f64 / direct.as_secs_f64();
        let tree_rate = (scale * waves) as f64 / tree.as_secs_f64();
        rows.push(vec![
            scale.to_string(),
            format!("{:.0}", direct_rate),
            format!("{:.0}", tree_rate),
            format!("{:.2}", direct.as_secs_f64()),
            format!("{:.2}", tree.as_secs_f64()),
        ]);
        eprintln!("scale {scale} done");
        scale *= 2;
    }
    println!(
        "{}",
        render_table(
            &[
                "backends",
                "direct rec/s",
                "tree rec/s",
                "direct total(s)",
                "tree total(s)"
            ],
            &rows
        )
    );
    println!("Paper shape: the direct front-end's per-record work grows linearly with");
    println!("daemons and saturates; the tree front-end sees one record per wave and");
    println!("its sustained record rate keeps scaling with the offered load.");
}
