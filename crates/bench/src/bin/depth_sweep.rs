//! Depth sweep (the paper's §3.2 open question): "whether even deeper
//! trees with limited fan-outs would yield a constant execution time as the
//! scale increases."
//!
//! Simulates the mean-shift reduction for depths 1..=5 at scales up to
//! 4096 back-ends, each depth using the most balanced integer fan-out that
//! reaches the scale.
//!
//! Usage: `depth_sweep [--era 25] [--scales 256,1024,4096]`

use tbon_bench::{calibrate, render_table};
use tbon_meanshift::{MeanShiftParams, SynthSpec};
use tbon_sim::{simulate_meanshift, LinkModel};
use tbon_topology::Topology;

/// Most balanced per-level fan-outs for `depth` levels hosting >= `leaves`
/// leaves, keeping the product as close to `leaves` as possible.
fn levels_for(leaves: usize, depth: usize) -> Vec<usize> {
    let base = (leaves as f64).powf(1.0 / depth as f64);
    let mut levels = vec![base.floor() as usize; depth];
    // Bump levels (last first) until the product covers the leaf count.
    let mut i = depth;
    while levels.iter().product::<usize>() < leaves {
        i = if i == 0 { depth - 1 } else { i - 1 };
        levels[i] += 1;
    }
    levels.iter_mut().for_each(|l| *l = (*l).max(2));
    levels
}

fn main() {
    let mut era = 25.0f64;
    let mut scales: Vec<usize> = vec![64, 256, 1024, 4096];
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--era" => era = it.next().unwrap().parse().unwrap(),
            "--scales" => {
                scales = it
                    .next()
                    .unwrap()
                    .split(',')
                    .map(|s| s.trim().parse().unwrap())
                    .collect();
            }
            other => panic!("unknown flag {other}"),
        }
    }

    let spec = SynthSpec::paper_default();
    let params = MeanShiftParams::default();
    let model = calibrate(&spec, &params, era).model;
    let link = LinkModel::gigabit_ethernet();

    println!("Depth sweep (simulated): completion time vs tree depth");
    println!("era scale {era}, GigE link model, calibrated mean-shift costs");
    println!();

    let depths = [1usize, 2, 3, 4, 5];
    let mut rows = Vec::new();
    for &scale in &scales {
        let mut row = vec![scale.to_string()];
        for &depth in &depths {
            let levels = levels_for(scale, depth);
            let topo = Topology::balanced_levels(&levels);
            let out = simulate_meanshift(&topo, link, &model);
            row.push(format!(
                "{:.1} ({})",
                out.completion,
                levels
                    .iter()
                    .map(|l| l.to_string())
                    .collect::<Vec<_>>()
                    .join("x")
            ));
        }
        rows.push(row);
        eprintln!("scale {scale} done");
    }
    println!(
        "{}",
        render_table(
            &[
                "back-ends",
                "depth1",
                "depth2",
                "depth3",
                "depth4",
                "depth5"
            ],
            &rows
        )
    );
    println!("Reading: each cell is completion seconds (fan-outs per level). The open");
    println!("question resolves as: deeper trees bound the per-node fan-out term, but");
    println!("because the full dataset still flows through the root, execution time");
    println!("cannot become perfectly constant — it approaches the root's merge cost.");
}
