//! Figure 4 (simulated at paper scale): single vs. flat vs. 2-deep trees
//! for scale factors 16..324, on a calibrated cost model of the real
//! implementation, era-scaled toward the paper's Pentium 4 testbed.
//!
//! Usage: `fig4_sim [--era 25] [--uncalibrated]`

use tbon_bench::{calibrate, deep_tree_for, render_table};
use tbon_meanshift::{MeanShiftParams, SynthSpec};
use tbon_sim::{simulate_meanshift, simulate_single_node, LinkModel, MsCostModel};
use tbon_topology::Topology;

fn main() {
    let mut era = 25.0f64;
    let mut use_calibration = true;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--era" => era = it.next().expect("--era wants a number").parse().unwrap(),
            "--uncalibrated" => use_calibration = false,
            other => panic!("unknown flag {other}"),
        }
    }

    let spec = SynthSpec::paper_default();
    let params = MeanShiftParams::default();
    let model: MsCostModel = if use_calibration {
        let cal = calibrate(&spec, &params, era);
        eprintln!(
            "calibrated on real implementation: leaf = {:.4}s on this machine, \
             occupancy {:.3}, {:.0} seeds, {:.1} cold iters, {:.1} warm iters",
            cal.leaf_seconds_measured,
            cal.model.window_occupancy,
            cal.model.seeds_per_leaf,
            cal.model.iters_leaf,
            cal.model.iters_merge
        );
        cal.model
    } else {
        MsCostModel {
            era_scale: era,
            ..MsCostModel::default()
        }
    };
    let link = LinkModel::gigabit_ethernet();

    println!("Figure 4 (simulated, paper scale): mean-shift processing times");
    println!("era scale: {era} (1.0 = this machine), link: GigE model");
    println!();

    let scales = [16usize, 32, 48, 64, 128, 256, 324];
    let mut rows = Vec::new();
    for &scale in &scales {
        let single = simulate_single_node(scale, &model);
        let flat = simulate_meanshift(&Topology::flat(scale), link, &model);
        let deep = simulate_meanshift(&deep_tree_for(scale), link, &model);
        rows.push(vec![
            scale.to_string(),
            format!("{:.1}", single),
            format!("{:.1}", flat.completion),
            format!("{:.1}", deep.completion),
        ]);
    }
    println!(
        "{}",
        render_table(&["scale", "single(s)", "flat(s)", "deep(s)"], &rows)
    );

    // Locate where the flat tree becomes "prohibitively expensive" — the
    // paper places the departure between fan-out 64 and 128. We call flat
    // prohibitive once it costs at least twice the deep tree.
    let mut crossover = None;
    for scale in (8..=512).step_by(8) {
        let flat = simulate_meanshift(&Topology::flat(scale), link, &model).completion;
        let deep = simulate_meanshift(&deep_tree_for(scale), link, &model).completion;
        if flat > deep * 2.0 {
            crossover = Some(scale);
            break;
        }
    }
    match crossover {
        Some(s) => println!(
            "flat becomes prohibitive (>2x deep) at ~{s} leaves (paper: between 64 and 128)"
        ),
        None => println!("flat never exceeded 2x deep up to 512 leaves"),
    }
}
