//! Tracing-plane overhead: E2-style tree throughput with wave tracing
//! disabled, sampling 1-in-64, and sampling 1-in-8, each with the in-band
//! trace stream open and drained.
//!
//! A sampled wave costs: one 8-byte id that is on the wire regardless, a
//! handful of span records into a fixed-size ring (no allocation on the
//! hot path), and its share of the byte-capped span batches riding the
//! dedicated trace stream. The PR's acceptance bar is < 5% regression at
//! 1-in-64 sampling on the standard E2 workload.
//!
//! Prints a `BENCH_trace.json` document to stdout:
//!
//! ```text
//! trace_overhead [--backends 64] [--waves 300] [--reps 3]
//!                [--record-cost-us 10] [--transport copying|zerocopy|tcp]
//!                [--date YYYY-MM-DD]
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use tbon_bench::fold;
use tbon_core::{
    BackendContext, BackendEvent, DataValue, NetworkBuilder, NetworkConfig, StreamConsumer,
    StreamSpec, Tag, TraceConfig,
};
use tbon_filters::builtin_registry;
use tbon_topology::{stats::required_depth, Topology};
use tbon_transport::{local::LocalTransport, tcp::TcpTransport, Transport};

const RECORD_LEN: usize = 32;
const FANOUT: usize = 8;

fn make_transport(kind: &str) -> Arc<dyn Transport> {
    match kind {
        "copying" => Arc::new(LocalTransport::new_copying()),
        "zerocopy" => Arc::new(LocalTransport::new()),
        "tcp" => Arc::new(TcpTransport::new()),
        other => panic!("unknown transport '{other}' (copying|zerocopy|tcp)"),
    }
}

fn backend_loop(waves: usize) -> impl Fn(BackendContext) + Send + Sync {
    move |mut ctx: BackendContext| loop {
        match ctx.next_event() {
            Ok(BackendEvent::Packet { stream, .. }) => {
                for w in 0..waves {
                    let record: Vec<f64> = (0..RECORD_LEN)
                        .map(|i| (w * RECORD_LEN + i) as f64)
                        .collect();
                    if ctx
                        .send(stream, Tag(w as u32), DataValue::ArrayF64(record))
                        .is_err()
                    {
                        break;
                    }
                }
            }
            Ok(BackendEvent::Shutdown) | Err(_) => break,
            Ok(_) => continue,
        }
    }
}

/// One E2 tree run; `sample_every > 0` enables tracing and opens the trace
/// stream at a 25 ms publish interval — aggressive, so span shipping lands
/// inside the measured window even though the whole run takes well under a
/// second. Returns (elapsed, spans received) — batches are drained so the
/// trace stream sees realistic consumption.
fn run_tree(
    backends: usize,
    waves: usize,
    transport: &str,
    record_cost: Duration,
    sample_every: u64,
) -> (Duration, u64) {
    let depth = required_depth(FANOUT, backends).max(1);
    let mut levels = vec![FANOUT; depth];
    let inner: usize = levels[..depth - 1].iter().product();
    if inner > 0 && backends.is_multiple_of(inner) && backends / inner > 0 {
        levels[depth - 1] = backends / inner;
    }
    let topo = Topology::balanced_levels(&levels);
    let config = NetworkConfig {
        trace: if sample_every > 0 {
            TraceConfig::sampled(sample_every)
        } else {
            TraceConfig::disabled()
        },
        ..NetworkConfig::default()
    };
    let mut net = NetworkBuilder::new(topo)
        .transport_arc(make_transport(transport))
        .registry(builtin_registry())
        .config(config)
        .backend(backend_loop(waves))
        .launch()
        .expect("launch");
    let traces = (sample_every > 0).then(|| {
        net.open_trace_stream(Duration::from_millis(25))
            .expect("trace stream")
    });
    let stream = net
        .new_stream(StreamSpec::all().transformation("builtin::sum"))
        .expect("stream");
    let start = Instant::now();
    stream.broadcast(Tag(0), DataValue::Unit).expect("start");
    let mut acc = vec![0.0f64; RECORD_LEN];
    let mut spans = 0u64;
    for _ in 0..waves {
        let pkt = stream
            .recv_within(Duration::from_secs(300))
            .unwrap()
            .expect("wave");
        fold(
            &mut acc,
            pkt.value().as_array_f64().expect("wave record"),
            record_cost,
        );
        if let Some(t) = &traces {
            while let Some((_, batch)) = t.poll() {
                spans += batch.spans.len() as u64;
            }
        }
    }
    let elapsed = start.elapsed();
    net.shutdown().expect("shutdown");
    (elapsed, spans)
}

fn main() {
    let mut backends = 64usize;
    let mut waves = 300usize;
    let mut reps = 3usize;
    let mut record_cost_us = 10u64;
    let mut transport = "copying".to_string();
    let mut date = "unknown".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--backends" => backends = it.next().unwrap().parse().unwrap(),
            "--waves" => waves = it.next().unwrap().parse().unwrap(),
            "--reps" => reps = it.next().unwrap().parse().unwrap(),
            "--record-cost-us" => record_cost_us = it.next().unwrap().parse().unwrap(),
            "--transport" => transport = it.next().unwrap(),
            "--date" => date = it.next().unwrap(),
            other => panic!("unknown flag {other}"),
        }
    }
    let record_cost = Duration::from_micros(record_cost_us);

    // (label, sample_every). 0 = tracing disabled entirely.
    let configs: [(&str, u64); 3] = [("off", 0), ("1in64", 64), ("1in8", 8)];
    // Best-of-reps rate per config, interleaved round-robin so host load
    // drift hits all three equally (same protocol as telemetry_overhead).
    let mut best = [Duration::MAX; 3];
    let mut total_spans = [0u64; 3];
    for _ in 0..reps {
        for (i, (_, sample_every)) in configs.iter().enumerate() {
            let (elapsed, spans) =
                run_tree(backends, waves, &transport, record_cost, *sample_every);
            best[i] = best[i].min(elapsed);
            total_spans[i] += spans;
        }
    }
    let mut rates = Vec::new();
    for (i, (label, _)) in configs.iter().enumerate() {
        let rate = (backends * waves) as f64 / best[i].as_secs_f64();
        eprintln!(
            "trace {label}: {rate:.0} rec/s (best of {reps}), {} spans",
            total_spans[i]
        );
        rates.push((*label, rate, total_spans[i]));
    }

    let base = rates[0].1;
    let overhead = |r: f64| (1.0 - r / base) * 100.0;
    let at_1in64 = overhead(rates[1].1);
    let pass = at_1in64 < 5.0;

    println!("{{");
    println!("  \"bench\": \"trace_overhead\",");
    println!(
        "  \"description\": \"E2 tree throughput ({backends} back-ends, fan-out {FANOUT}, {waves} waves of {RECORD_LEN}-f64 records, {record_cost_us}us front-end record cost, {transport} transport) with wave tracing off, sampling 1-in-64, and sampling 1-in-8; traced runs keep the in-band trace stream open at a 25ms publish interval and drain it. Rates are records/s, best of {reps} runs.\","
    );
    println!("  \"date\": \"{date}\",");
    println!(
        "  \"harness\": \"cargo run --release -p tbon-bench --bin trace_overhead (offline stubs, single-core container)\","
    );
    println!("  \"acceptance\": {{");
    println!(
        "    \"criterion\": \"throughput with 1-in-64 wave sampling regresses < 5% vs tracing off\","
    );
    println!("    \"measured_overhead_pct_at_1in64\": {at_1in64:.2},");
    println!("    \"pass\": {pass}");
    println!("  }},");
    println!("  \"results\": [");
    for (i, (label, rate, spans)) in rates.iter().enumerate() {
        let comma = if i + 1 < rates.len() { "," } else { "" };
        println!(
            "    {{ \"tracing\": \"{label}\", \"records_per_s\": {rate:.0}, \"overhead_pct\": {:.2}, \"spans_received\": {spans} }}{comma}",
            overhead(*rate),
        );
    }
    println!("  ],");
    println!(
        "  \"notes\": \"A sampled wave records ~4 spans per hop into fixed-size rings; spans ship on one extra stream, byte-capped per publish interval. The 8-byte trace id is carried on every packet whether or not the wave is sampled, so the off column already pays the wire cost and the delta isolates span recording + shipping. Negative overhead means the run fell within scheduler noise of the baseline.\""
    );
    println!("}}");
}
