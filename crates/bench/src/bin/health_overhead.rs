//! Health-plane overhead: E2-style tree throughput with the health plane
//! disabled versus fully armed (default scoring cadence, incident stream
//! open and drained).
//!
//! An armed health plane costs: one timer check per event-loop deadline, a
//! handful of counter subtractions and EWMA updates per `check_interval`,
//! and — absent faults — nothing on the wire, because bundles only ship
//! when something crosses a baseline. The PR's acceptance bar is < 2%
//! wave-throughput regression with defaults on.
//!
//! Prints a `BENCH_health.json` document to stdout:
//!
//! ```text
//! health_overhead [--backends 64] [--waves 300] [--reps 3]
//!                 [--record-cost-us 10] [--transport copying|zerocopy|tcp]
//!                 [--date YYYY-MM-DD]
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use tbon_bench::fold;
use tbon_core::{
    BackendContext, BackendEvent, DataValue, HealthConfig, NetworkBuilder, NetworkConfig,
    StreamConsumer, StreamSpec, Tag,
};
use tbon_filters::builtin_registry;
use tbon_topology::{stats::required_depth, Topology};
use tbon_transport::{local::LocalTransport, tcp::TcpTransport, Transport};

const RECORD_LEN: usize = 32;
const FANOUT: usize = 8;

fn make_transport(kind: &str) -> Arc<dyn Transport> {
    match kind {
        "copying" => Arc::new(LocalTransport::new_copying()),
        "zerocopy" => Arc::new(LocalTransport::new()),
        "tcp" => Arc::new(TcpTransport::new()),
        other => panic!("unknown transport '{other}' (copying|zerocopy|tcp)"),
    }
}

fn backend_loop(waves: usize) -> impl Fn(BackendContext) + Send + Sync {
    move |mut ctx: BackendContext| loop {
        match ctx.next_event() {
            Ok(BackendEvent::Packet { stream, .. }) => {
                for w in 0..waves {
                    let record: Vec<f64> = (0..RECORD_LEN)
                        .map(|i| (w * RECORD_LEN + i) as f64)
                        .collect();
                    if ctx
                        .send(stream, Tag(w as u32), DataValue::ArrayF64(record))
                        .is_err()
                    {
                        break;
                    }
                }
            }
            Ok(BackendEvent::Shutdown) | Err(_) => break,
            Ok(_) => continue,
        }
    }
}

/// One E2 tree run; `armed` turns on the default health plane and opens the
/// incident stream so any capture actually ships and is drained. Returns
/// (elapsed, bundles received) — bundles stay at zero in a healthy run,
/// which is exactly the steady state this bench prices.
fn run_tree(
    backends: usize,
    waves: usize,
    transport: &str,
    record_cost: Duration,
    armed: bool,
) -> (Duration, u64) {
    let depth = required_depth(FANOUT, backends).max(1);
    let mut levels = vec![FANOUT; depth];
    let inner: usize = levels[..depth - 1].iter().product();
    if inner > 0 && backends.is_multiple_of(inner) && backends / inner > 0 {
        levels[depth - 1] = backends / inner;
    }
    let topo = Topology::balanced_levels(&levels);
    let config = NetworkConfig {
        health: if armed {
            HealthConfig::default()
        } else {
            HealthConfig::disabled()
        },
        ..NetworkConfig::default()
    };
    let mut net = NetworkBuilder::new(topo)
        .transport_arc(make_transport(transport))
        .registry(builtin_registry())
        .config(config)
        .backend(backend_loop(waves))
        .launch()
        .expect("launch");
    let incidents = armed.then(|| net.open_incident_stream().expect("incident stream"));
    let stream = net
        .new_stream(StreamSpec::all().transformation("builtin::sum"))
        .expect("stream");
    let start = Instant::now();
    stream.broadcast(Tag(0), DataValue::Unit).expect("start");
    let mut acc = vec![0.0f64; RECORD_LEN];
    let mut bundles = 0u64;
    for _ in 0..waves {
        let pkt = stream
            .recv_within(Duration::from_secs(300))
            .unwrap()
            .expect("wave");
        fold(
            &mut acc,
            pkt.value().as_array_f64().expect("wave record"),
            record_cost,
        );
        if let Some(h) = &incidents {
            while let Some((_, batch)) = h.poll() {
                bundles += batch.bundles.len() as u64;
            }
        }
    }
    let elapsed = start.elapsed();
    net.shutdown().expect("shutdown");
    (elapsed, bundles)
}

fn main() {
    let mut backends = 64usize;
    let mut waves = 300usize;
    let mut reps = 3usize;
    let mut record_cost_us = 10u64;
    let mut transport = "copying".to_string();
    let mut date = "unknown".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--backends" => backends = it.next().unwrap().parse().unwrap(),
            "--waves" => waves = it.next().unwrap().parse().unwrap(),
            "--reps" => reps = it.next().unwrap().parse().unwrap(),
            "--record-cost-us" => record_cost_us = it.next().unwrap().parse().unwrap(),
            "--transport" => transport = it.next().unwrap(),
            "--date" => date = it.next().unwrap(),
            other => panic!("unknown flag {other}"),
        }
    }
    let record_cost = Duration::from_micros(record_cost_us);

    let configs: [(&str, bool); 2] = [("off", false), ("on", true)];
    // Best-of-reps rate per config, interleaved round-robin so host load
    // drift hits both equally (same protocol as trace_overhead).
    let mut best = [Duration::MAX; 2];
    let mut total_bundles = [0u64; 2];
    for _ in 0..reps {
        for (i, (_, armed)) in configs.iter().enumerate() {
            let (elapsed, bundles) = run_tree(backends, waves, &transport, record_cost, *armed);
            best[i] = best[i].min(elapsed);
            total_bundles[i] += bundles;
        }
    }
    let mut rates = Vec::new();
    for (i, (label, _)) in configs.iter().enumerate() {
        let rate = (backends * waves) as f64 / best[i].as_secs_f64();
        eprintln!(
            "health {label}: {rate:.0} rec/s (best of {reps}), {} bundles",
            total_bundles[i]
        );
        rates.push((*label, rate, total_bundles[i]));
    }

    let base = rates[0].1;
    let overhead = |r: f64| (1.0 - r / base) * 100.0;
    let armed_overhead = overhead(rates[1].1);
    let pass = armed_overhead < 2.0;

    println!("{{");
    println!("  \"bench\": \"health_overhead\",");
    println!(
        "  \"description\": \"E2 tree throughput ({backends} back-ends, fan-out {FANOUT}, {waves} waves of {RECORD_LEN}-f64 records, {record_cost_us}us front-end record cost, {transport} transport) with the health plane disabled vs armed with defaults; armed runs keep the in-band incident stream open and drain it. Rates are records/s, best of {reps} runs.\","
    );
    println!("  \"date\": \"{date}\",");
    println!(
        "  \"harness\": \"cargo run --release -p tbon-bench --bin health_overhead (offline stubs, single-core container)\","
    );
    println!("  \"acceptance\": {{");
    println!(
        "    \"criterion\": \"throughput with the default health plane armed regresses < 2% vs disabled\","
    );
    println!("    \"measured_overhead_pct_armed\": {armed_overhead:.2},");
    println!("    \"pass\": {pass}");
    println!("  }},");
    println!("  \"results\": [");
    for (i, (label, rate, bundles)) in rates.iter().enumerate() {
        let comma = if i + 1 < rates.len() { "," } else { "" };
        println!(
            "    {{ \"health\": \"{label}\", \"records_per_s\": {rate:.0}, \"overhead_pct\": {:.2}, \"bundles_received\": {bundles} }}{comma}",
            overhead(*rate),
        );
    }
    println!("  ],");
    println!(
        "  \"notes\": \"Armed sampling is a few counter subtractions and EWMA folds per 200ms check interval per process; a healthy run never crosses a baseline, so nothing extra rides the wire and bundles_received stays 0. The incident stream itself costs one stream-table entry. Negative overhead means the run fell within scheduler noise of the baseline.\""
    );
    println!("}}");
}
