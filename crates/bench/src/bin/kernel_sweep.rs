//! A3 ablation (§3.1): kernel shape function × bandwidth grid.
//!
//! The paper fixes a Gaussian kernel and bandwidth 50 ("seems to work well
//! with our data") and lists uniform/quadratic/triangular as alternatives.
//! This harness runs the real single-node pipeline over the grid and
//! reports peaks found, iterations and runtime, showing where the fixed
//! choice sits.
//!
//! Usage: `kernel_sweep [--points 300] [--bandwidths 20,35,50,80,120]`

use tbon_bench::render_table;
use tbon_meanshift::{run_single_node, Kernel, MeanShiftParams, SynthSpec};

fn main() {
    let mut points = 300usize;
    let mut bandwidths: Vec<f64> = vec![20.0, 35.0, 50.0, 80.0, 120.0];
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--points" => points = it.next().unwrap().parse().unwrap(),
            "--bandwidths" => {
                bandwidths = it
                    .next()
                    .unwrap()
                    .split(',')
                    .map(|s| s.trim().parse().unwrap())
                    .collect();
            }
            other => panic!("unknown flag {other}"),
        }
    }

    let spec = SynthSpec {
        points_per_cluster: points,
        ..SynthSpec::paper_default()
    };
    let data = spec.generate(0);
    println!(
        "A3: kernel x bandwidth sweep on {} points, true modes: {}",
        data.len(),
        spec.centers.len()
    );
    println!();

    let mut rows = Vec::new();
    for kernel in Kernel::all() {
        for &bw in &bandwidths {
            let params = MeanShiftParams {
                bandwidth: bw,
                kernel,
                merge_radius: bw / 2.0,
                ..MeanShiftParams::default()
            };
            let run = run_single_node(data.clone(), &params);
            rows.push(vec![
                kernel.name().to_string(),
                format!("{bw}"),
                run.peaks.len().to_string(),
                run.stats.seeds.to_string(),
                run.stats.total_iterations.to_string(),
                format!("{:.4}", run.elapsed.as_secs_f64()),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &["kernel", "bandwidth", "peaks", "seeds", "iters", "time(s)"],
            &rows
        )
    );
    println!("Expected: bandwidth 50 recovers the 3 true modes for every kernel;");
    println!("small bandwidths fragment clusters into many spurious peaks, large ones");
    println!("merge distinct clusters. Gaussian needs more iterations than uniform but");
    println!("is robust on the noisy data — matching the paper's choice.");
}
