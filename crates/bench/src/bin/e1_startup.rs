//! E1 (§2.2 in-text): tool-startup aggregation with redundant catalogs.
//!
//! Paradyn's front-end collects a metric/resource catalog from every daemon
//! at startup; with 512 daemons the one-to-many design took over a minute,
//! while MRNet's equivalence-class filter brought it under 20 seconds (3.4×).
//!
//! We reproduce the *structure*: every back-end reports a catalog of
//! `items` strings, ~`redundancy`% identical across daemons. The baseline
//! gathers raw catalogs to the front-end (concat, no reduction) and dedups
//! there; the TBON version runs `filter::equivalence` in a fan-out-8 tree.
//! Absolute times differ from 2006 hardware; the speedup factor and its
//! growth with scale is the reproduced result.
//!
//! The front-end pays a per-entry *registration cost* for every catalog
//! entry it processes — the stand-in for Paradyn's metric/resource
//! registration work, which we do not reimplement (see DESIGN.md). The
//! equivalence filter's whole point is that the front-end registers each
//! distinct entry once instead of once per daemon.
//!
//! Usage: `e1_startup [--backends 512] [--items 50] [--unique 4] [--reps 2]
//!                    [--entry-cost-us 20] [--transport copying|zerocopy|tcp]`

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tbon_bench::render_table;
use tbon_core::{
    BackendContext, BackendEvent, DataValue, NetworkBuilder, StreamConsumer, StreamSpec, Tag,
};
use tbon_filters::{builtin_registry, decode_classes};
use tbon_topology::{stats::required_depth, Topology};
use tbon_transport::{local::LocalTransport, tcp::TcpTransport, Transport};

/// Pick the experiment's transport. The default is the *copying* local
/// transport: every hop serializes and deserializes, as real sockets do —
/// the cost structure the 2006 measurement reflects. `zerocopy` shows how
/// much counted packet references recover; `tcp` uses real loopback
/// sockets.
fn make_transport(kind: &str) -> Arc<dyn Transport> {
    match kind {
        "copying" => Arc::new(LocalTransport::new_copying()),
        "zerocopy" => Arc::new(LocalTransport::new()),
        "tcp" => Arc::new(TcpTransport::new()),
        other => panic!("unknown transport '{other}' (copying|zerocopy|tcp)"),
    }
}

const TAG_REPORT: Tag = Tag(1);

/// Busy-work stand-in for the front-end's per-entry registration cost.
fn register_entry(cost: Duration) {
    let end = Instant::now() + cost;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

/// The catalog a daemon reports: mostly shared entries plus a few unique
/// to a small class of daemons (the realistic Paradyn shape: homogeneous
/// cluster, a handful of host-specific resources).
fn catalog(rank: u32, items: usize, unique_classes: usize) -> DataValue {
    let mut entries: Vec<DataValue> = (0..items.saturating_sub(1))
        .map(|i| DataValue::Str(format!("metric/shared/cpu_time_{i}")))
        .collect();
    entries.push(DataValue::Str(format!(
        "resource/host_class_{}",
        rank as usize % unique_classes
    )));
    DataValue::Tuple(entries)
}

fn backend_loop(items: usize, unique_classes: usize) -> impl Fn(BackendContext) + Send + Sync {
    move |mut ctx: BackendContext| loop {
        match ctx.next_event() {
            Ok(BackendEvent::Packet { stream, .. }) => {
                let _ = ctx.send(
                    stream,
                    TAG_REPORT,
                    catalog(ctx.rank().0, items, unique_classes),
                );
            }
            Ok(BackendEvent::Shutdown) | Err(_) => break,
            Ok(_) => continue,
        }
    }
}

/// Baseline: gather every raw catalog to the front-end and dedup there.
fn run_direct(
    backends: usize,
    items: usize,
    unique_classes: usize,
    transport: &str,
    entry_cost: Duration,
) -> (Duration, usize) {
    let mut net = NetworkBuilder::new(Topology::flat(backends))
        .transport_arc(make_transport(transport))
        .registry(builtin_registry())
        .backend(backend_loop(items, unique_classes))
        .launch()
        .expect("launch direct");
    // Null sync + identity: the front-end handles each daemon's catalog
    // individually, exactly like a one-to-many tool.
    let stream = net
        .new_stream(StreamSpec::all().sync(tbon_core::SyncPolicy::Null))
        .expect("stream");
    let start = Instant::now();
    stream
        .broadcast(Tag(0), DataValue::Unit)
        .expect("broadcast");
    let mut distinct: HashSet<String> = HashSet::new();
    for _ in 0..backends {
        let pkt = stream
            .recv_within(Duration::from_secs(120))
            .unwrap()
            .expect("catalog");
        for e in pkt.value().as_tuple().expect("catalog tuple") {
            // One-to-many: the front-end registers every entry of every
            // daemon's catalog, redundant or not.
            register_entry(entry_cost);
            distinct.insert(e.as_str().expect("entry").to_owned());
        }
    }
    let elapsed = start.elapsed();
    net.shutdown().expect("shutdown");
    (elapsed, distinct.len())
}

/// TBON: equivalence classes collapse identical catalogs inside the tree.
fn run_tree(
    backends: usize,
    fanout: usize,
    items: usize,
    unique_classes: usize,
    transport: &str,
    entry_cost: Duration,
) -> (Duration, usize) {
    let depth = required_depth(fanout, backends);
    let mut levels = vec![fanout; depth.max(1)];
    // Trim the last level so the leaf count matches exactly when possible.
    let product: usize = levels.iter().product();
    if product != backends {
        // Fall back to a flat last level: depth-1 levels of `fanout` plus
        // whatever remainder fan-out reaches the exact count.
        let inner: usize = levels[..depth - 1].iter().product();
        if backends.is_multiple_of(inner) {
            levels[depth - 1] = backends / inner;
        } else {
            // Give up on exactness; use the closed form tree.
            levels = vec![fanout; depth];
        }
    }
    let topo = Topology::balanced_levels(&levels);
    let mut net = NetworkBuilder::new(topo)
        .transport_arc(make_transport(transport))
        .registry(builtin_registry())
        .backend(backend_loop(items, unique_classes))
        .launch()
        .expect("launch tree");
    let stream = net
        .new_stream(StreamSpec::all().transformation("filter::equivalence"))
        .expect("stream");
    let start = Instant::now();
    stream
        .broadcast(Tag(0), DataValue::Unit)
        .expect("broadcast");
    let pkt = stream
        .recv_within(Duration::from_secs(120))
        .unwrap()
        .expect("classes");
    let classes = decode_classes(pkt.value()).expect("decode classes");
    // The front-end registers each distinct catalog's entries exactly once;
    // class membership (which daemons share it) is already aggregated.
    for class in &classes {
        let entries = class.value.as_tuple().map(|t| t.len()).unwrap_or(1);
        for _ in 0..entries {
            register_entry(entry_cost);
        }
    }
    let elapsed = start.elapsed();
    net.shutdown().expect("shutdown");
    (elapsed, classes.len())
}

fn main() {
    let mut backends = 512usize;
    let mut items = 50usize;
    let mut unique_classes = 4usize;
    let mut reps = 2usize;
    let mut transport = "copying".to_string();
    let mut entry_cost_us = 20u64;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--backends" => backends = it.next().unwrap().parse().unwrap(),
            "--items" => items = it.next().unwrap().parse().unwrap(),
            "--unique" => unique_classes = it.next().unwrap().parse().unwrap(),
            "--reps" => reps = it.next().unwrap().parse().unwrap(),
            "--transport" => transport = it.next().unwrap(),
            "--entry-cost-us" => entry_cost_us = it.next().unwrap().parse().unwrap(),
            other => panic!("unknown flag {other}"),
        }
    }

    println!("E1: startup catalog aggregation (Paradyn integration, §2.2)");
    println!(
        "catalog: {items} entries/daemon, {unique_classes} host classes; fan-out 8 tree vs one-to-many; transport: {transport}; entry cost: {entry_cost_us}us"
    );
    println!();

    let mut rows = Vec::new();
    for scale in [64usize, 128, 256, backends] {
        let mut direct_total = Duration::ZERO;
        let mut tree_total = Duration::ZERO;
        let mut direct_distinct = 0;
        let mut tree_classes = 0;
        for _ in 0..reps {
            let entry_cost = Duration::from_micros(entry_cost_us);
            let (d, n) = run_direct(scale, items, unique_classes, &transport, entry_cost);
            direct_total += d;
            direct_distinct = n;
            let (t, c) = run_tree(scale, 8, items, unique_classes, &transport, entry_cost);
            tree_total += t;
            tree_classes = c;
        }
        let direct = direct_total / reps as u32;
        let tree = tree_total / reps as u32;
        rows.push(vec![
            scale.to_string(),
            format!("{:.3}", direct.as_secs_f64()),
            format!("{:.3}", tree.as_secs_f64()),
            format!("{:.2}x", direct.as_secs_f64() / tree.as_secs_f64()),
            direct_distinct.to_string(),
            tree_classes.to_string(),
        ]);
        eprintln!("scale {scale} done");
    }
    println!(
        "{}",
        render_table(
            &[
                "daemons",
                "direct(s)",
                "tree(s)",
                "speedup",
                "distinct entries",
                "classes at FE"
            ],
            &rows
        )
    );
    println!("Paper: 512 daemons, >60s direct vs <20s with MRNet filters (3.4x).");
    println!("The reproduced result is the speedup factor growing with daemon count;");
    println!("absolute times reflect this machine, not 2006 Pentium 4s.");
}
