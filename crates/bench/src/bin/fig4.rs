//! Figure 4 (measured): mean-shift processing times for `single`, `flat`
//! (1-deep) and `deep` (2-deep) trees as the input scale grows.
//!
//! The X axis is the paper's "input data set scale factor": the number of
//! back-ends, each generating one partition, so total data grows with the
//! scale. We run the *real* distributed implementation on threads; scales
//! are capped by this machine (the paper's 324-node sweep is regenerated at
//! full scale by `fig4_sim`). Usage:
//!
//! ```text
//! fig4 [--scales 4,8,16,32,64] [--points 200] [--reps 2] [--no-single]
//! ```

use std::time::Duration;

use tbon_bench::{deep_tree_for, render_table, secs};
use tbon_meanshift::{run_distributed, run_single_equivalent, MeanShiftParams, SynthSpec};
use tbon_topology::Topology;

struct Args {
    scales: Vec<usize>,
    points_per_cluster: usize,
    reps: usize,
    single: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        scales: vec![4, 8, 16, 32, 48, 64],
        points_per_cluster: 200,
        reps: 2,
        single: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scales" => {
                let v = it.next().expect("--scales wants a list");
                args.scales = v
                    .split(',')
                    .map(|s| s.trim().parse().expect("scale must be a number"))
                    .collect();
            }
            "--points" => {
                args.points_per_cluster =
                    it.next().expect("--points wants a number").parse().unwrap();
            }
            "--reps" => {
                args.reps = it.next().expect("--reps wants a number").parse().unwrap();
            }
            "--no-single" => args.single = false,
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn mean_of(mut f: impl FnMut() -> Duration, reps: usize) -> Duration {
    let total: Duration = (0..reps).map(|_| f()).sum();
    total / reps as u32
}

fn main() {
    let args = parse_args();
    let spec = SynthSpec {
        points_per_cluster: args.points_per_cluster,
        ..SynthSpec::paper_default()
    };
    let params = MeanShiftParams::default();

    println!("Figure 4 (measured): mean-shift processing times");
    println!(
        "per-leaf points: {}, reps: {}, kernel: {}, bandwidth: {}",
        spec.points_per_leaf(),
        args.reps,
        params.kernel,
        params.bandwidth
    );
    println!();

    let mut rows = Vec::new();
    for &scale in &args.scales {
        let single_cell = if args.single {
            // Same partitions the flat tree's leaves (ranks 1..=scale) own.
            let ranks: Vec<u64> = (1..=scale as u64).collect();
            let d = mean_of(
                || run_single_equivalent(&ranks, &spec, &params).elapsed,
                args.reps,
            );
            secs(d)
        } else {
            "-".into()
        };

        let flat = mean_of(
            || {
                run_distributed(Topology::flat(scale), &spec, &params)
                    .expect("flat run failed")
                    .elapsed
            },
            args.reps,
        );

        let deep_cell = if scale >= 4 {
            let d = mean_of(
                || {
                    run_distributed(deep_tree_for(scale), &spec, &params)
                        .expect("deep run failed")
                        .elapsed
                },
                args.reps,
            );
            secs(d)
        } else {
            "-".into()
        };

        rows.push(vec![scale.to_string(), single_cell, secs(flat), deep_cell]);
        eprintln!("scale {scale} done");
    }

    println!(
        "{}",
        render_table(&["scale", "single(s)", "flat(s)", "deep(s)"], &rows)
    );
    println!("Expected shape (paper): single grows linearly; flat tracks deep at small");
    println!("scale, then blows up as the front-end fan-out crosses 64-128; deep stays");
    println!("nearly constant with a mild slope beyond 64 leaves.");
}
