//! E3 (§3.2 in-text): internal-node overhead of deep trees.
//!
//! "With a fan-out of 16, 16 (6.25% more) internal nodes are needed to
//! connect 256 back-ends, or 272 (6.6%) for 4096 back-ends."
//!
//! Regenerates that arithmetic for a grid of fan-outs and scales, both
//! from the closed form and by constructing the actual topologies.

use tbon_bench::render_table;
use tbon_topology::stats::{internal_nodes_for, overhead_percent_for, required_depth};
use tbon_topology::{Topology, TopologyStats};

fn main() {
    println!("E3: internal-node overhead of balanced trees (§3.2)");
    println!();

    let fanouts = [2usize, 4, 8, 16, 32];
    let backend_counts = [64usize, 256, 1024, 4096];

    let mut rows = Vec::new();
    for &backends in &backend_counts {
        for &fanout in &fanouts {
            let internals = internal_nodes_for(fanout, backends);
            let pct = overhead_percent_for(fanout, backends);
            let depth = required_depth(fanout, backends);
            rows.push(vec![
                backends.to_string(),
                fanout.to_string(),
                depth.to_string(),
                internals.to_string(),
                format!("{pct:.2}%"),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "back-ends",
                "fan-out",
                "depth",
                "internal nodes",
                "overhead"
            ],
            &rows
        )
    );

    // Verify the paper's two quoted data points against real constructions.
    let t256 = Topology::balanced(16, 2);
    let s256 = TopologyStats::of(&t256);
    let t4096 = Topology::balanced(16, 3);
    let s4096 = TopologyStats::of(&t4096);
    println!(
        "paper check: fan-out 16, 256 back-ends -> {} internals ({:.2}%)  [paper: 16, 6.25%]",
        s256.internals, s256.overhead_percent
    );
    println!(
        "paper check: fan-out 16, 4096 back-ends -> {} internals ({:.2}%) [paper: 272, 6.6%]",
        s4096.internals, s4096.overhead_percent
    );
    assert_eq!(s256.internals, 16);
    assert_eq!(s4096.internals, 272);
    assert!((s256.overhead_percent - 6.25).abs() < 1e-9);
    assert!((s4096.overhead_percent - 6.640625).abs() < 1e-9);
    println!("both match.");
}
