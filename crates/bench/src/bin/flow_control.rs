//! Goodput with one 10x-slow child: credit flow control vs the seed's
//! kill-the-child behavior.
//!
//! One root, fan-out 8, every edge traffic-shaped. Seven children sit on
//! "fast" links; one child's links are 10x slower, slow enough that a
//! multicast burst jams its bounded link queue. The seed runtime (modeled
//! by `FlowConfig::disabled()`) escalates the resulting
//! `TransportError::Backpressure` to a child death and finishes the run
//! with seven children. With credit windows on (sized under the link queue
//! so backpressure never trips), the same burst parks at the root and
//! drains at the slow link's pace: every child sees every wave and nobody
//! dies.
//!
//! Prints a `BENCH_flowcontrol.json` document to stdout:
//!
//! ```sh
//! cargo run --release -p tbon-bench --bin flow_control -- \
//!     --waves 30 --date "$(date -I)" > results/BENCH_flowcontrol.json
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use tbon_core::{
    BackendContext, BackendEvent, DataValue, FlowConfig, NetEvent, NetworkBuilder, NetworkConfig,
    StreamConsumer, StreamSpec, Tag,
};
use tbon_filters::builtin_registry;
use tbon_topology::Topology;
use tbon_transport::local::LocalTransport;
use tbon_transport::shaped::{ShapedTransport, Shaping};
use tbon_transport::{Transport, WriterConfig};

const FANOUT: usize = 8;
/// The shaped link queue: deeper than the credit window, shallower than a
/// burst.
const QUEUE_DEPTH: usize = 8;
/// How long a jammed shaped link blocks before reporting `Backpressure`.
const SEND_DEADLINE: Duration = Duration::from_millis(100);

struct RunStats {
    elapsed: Duration,
    /// Leaf replies consolidated across all completed waves.
    acks: u64,
    child_deaths: usize,
}

/// Every edge between tree nodes is shaped; links to the out-of-band
/// control/supervisor peers stay unshaped. The last leaf's edges get a
/// tenth of the bandwidth of everyone else's.
fn shaped_transport(slow_leaf: u32, fast_bps: f64) -> Arc<dyn Transport> {
    let nodes = (FANOUT + 1) as u32;
    let transport = ShapedTransport::with_edge_fn(LocalTransport::new(), move |a, b| {
        if a >= nodes || b >= nodes {
            return Shaping::unshaped();
        }
        let bps = if a == slow_leaf || b == slow_leaf {
            fast_bps / 10.0
        } else {
            fast_bps
        };
        Shaping {
            latency: Duration::from_micros(100),
            bandwidth_bps: Some(bps),
        }
    })
    .with_writer_config(WriterConfig {
        queue_depth: QUEUE_DEPTH,
        send_deadline: SEND_DEADLINE,
        ..WriterConfig::default()
    });
    Arc::new(transport)
}

/// Ack each downstream frame with a tiny reply; `builtin::count` folds the
/// acks so the front end sees how many children a wave actually reached.
fn ack_backend() -> impl Fn(BackendContext) + Send + Sync {
    |mut ctx: BackendContext| loop {
        match ctx.next_event() {
            Ok(BackendEvent::Packet { stream, packet }) => {
                let _ = ctx.send(stream, packet.tag(), DataValue::I64(1));
            }
            Ok(BackendEvent::Shutdown) | Err(_) => break,
            Ok(_) => continue,
        }
    }
}

fn run(flow: FlowConfig, waves: usize, payload: usize, fast_bps: f64) -> RunStats {
    let slow_leaf = FANOUT as u32;
    let cfg = NetworkConfig {
        name: "flowbench".into(),
        flow,
        ..NetworkConfig::default()
    };
    let mut net = NetworkBuilder::new(Topology::flat(FANOUT))
        .registry(builtin_registry())
        .transport_arc(shaped_transport(slow_leaf, fast_bps))
        .config(cfg)
        .backend(ack_backend())
        .launch()
        .expect("launch");
    let stream = net
        .new_stream(StreamSpec::all().transformation("builtin::count"))
        .expect("stream");

    let start = Instant::now();
    for w in 0..waves {
        stream
            .broadcast(Tag(w as u32), DataValue::Bytes(vec![0u8; payload]))
            .expect("broadcast");
    }
    let mut acks = 0u64;
    for _ in 0..waves {
        let pkt = stream
            .recv_within(Duration::from_secs(300))
            .expect("recv")
            .expect("wave");
        acks += pkt.value().as_u64().unwrap_or(0);
    }
    let elapsed = start.elapsed();

    let mut child_deaths = 0usize;
    while let Some(ev) = net.poll_event() {
        if matches!(ev, NetEvent::BackendLost { .. } | NetEvent::Degraded { .. }) {
            child_deaths += 1;
        }
    }
    net.shutdown().expect("shutdown");
    RunStats {
        elapsed,
        acks,
        child_deaths,
    }
}

fn main() {
    let mut waves = 30usize;
    let mut payload = 16 * 1024usize;
    // Fast-edge bandwidth: 640 KiB/s puts the slow edge at 64 KiB/s, i.e.
    // 250 ms per 16 KiB frame — far past the 100 ms send deadline, so an
    // unthrottled burst is guaranteed to jam it.
    let mut fast_bps = 640.0 * 1024.0;
    let mut date = "unknown".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--waves" => waves = it.next().unwrap().parse().unwrap(),
            "--payload" => payload = it.next().unwrap().parse().unwrap(),
            "--fast-bps" => fast_bps = it.next().unwrap().parse().unwrap(),
            "--date" => date = it.next().unwrap(),
            other => panic!("unknown flag {other}"),
        }
    }

    // Seed behavior: no windows, backpressure escalates to a kill.
    let seed = run(FlowConfig::disabled(), waves, payload, fast_bps);
    // Credit windows sized under the link queue: backpressure never trips.
    let flow = FlowConfig {
        window_frames: 6,
        window_bytes: 0,
        low_watermark: 2,
    };
    let credit = run(flow, waves, payload, fast_bps);

    let expected = (waves * FANOUT) as u64;
    let seed_goodput = seed.acks as f64 / seed.elapsed.as_secs_f64();
    let credit_goodput = credit.acks as f64 / credit.elapsed.as_secs_f64();
    let pass = credit.child_deaths == 0 && credit.acks == expected && seed.child_deaths >= 1;
    eprintln!(
        "seed: {}/{} acks in {:.2}s ({:.1} acks/s), {} child deaths; \
         flow: {}/{} acks in {:.2}s ({:.1} acks/s), {} child deaths",
        seed.acks,
        expected,
        seed.elapsed.as_secs_f64(),
        seed_goodput,
        seed.child_deaths,
        credit.acks,
        expected,
        credit.elapsed.as_secs_f64(),
        credit_goodput,
        credit.child_deaths,
    );

    println!("{{");
    println!("  \"bench\": \"flow_control\",");
    println!(
        "  \"description\": \"Multicast goodput over a fan-out {FANOUT} tree with every edge traffic-shaped and one leaf's links 10x slower ({waves} waves of {payload}-byte payloads, {QUEUE_DEPTH}-frame link queues, {}ms send deadline). Seed config (flow disabled) escalates the slow link's backpressure to a child death; credit windows (6 frames, watermark 2) pause the stream instead.\",",
        SEND_DEADLINE.as_millis()
    );
    println!("  \"date\": \"{date}\",");
    println!(
        "  \"harness\": \"cargo run --release -p tbon-bench --bin flow_control (offline stubs, single-core container)\","
    );
    println!("  \"acceptance\": {{");
    println!(
        "    \"criterion\": \"with flow control every child survives and every wave reaches all {FANOUT} children; the seed config loses at least one child on the same schedule\","
    );
    println!(
        "    \"measured_flow_child_deaths\": {},",
        credit.child_deaths
    );
    println!(
        "    \"measured_flow_acks\": {}, \"expected_acks\": {expected},",
        credit.acks
    );
    println!("    \"measured_seed_child_deaths\": {},", seed.child_deaths);
    println!("    \"pass\": {pass}");
    println!("  }},");
    println!("  \"results\": [");
    println!(
        "    {{ \"config\": \"seed_no_flow\", \"acks\": {}, \"expected\": {expected}, \"elapsed_s\": {:.3}, \"goodput_acks_per_s\": {:.1}, \"child_deaths\": {} }},",
        seed.acks,
        seed.elapsed.as_secs_f64(),
        seed_goodput,
        seed.child_deaths
    );
    println!(
        "    {{ \"config\": \"credit_flow\", \"acks\": {}, \"expected\": {expected}, \"elapsed_s\": {:.3}, \"goodput_acks_per_s\": {:.1}, \"child_deaths\": {} }}",
        credit.acks,
        credit.elapsed.as_secs_f64(),
        credit_goodput,
        credit.child_deaths
    );
    println!("  ],");
    println!(
        "  \"notes\": \"Goodput counts consolidated leaf acks per second, so the seed run looks faster only because it amputated the slow subtree and stopped delivering to it: its ack total falls short of expected. The credit run's elapsed time is the honest cost of delivering every wave to the slowest live child — the run is paced by the shaped 64 KiB/s edge, not by the runtime.\""
    );
    println!("}}");
}
