//! Telemetry-plane overhead: E2-style tree throughput with the in-band
//! metrics stream disabled, at a relaxed interval, and at an aggressive
//! interval.
//!
//! The telemetry plane rides the same tree it measures (one extra stream,
//! one small sample per comm process per interval, merged level-by-level),
//! so its cost should be a fixed, tiny tax on wave throughput — the PR's
//! acceptance bar is < 5% regression at a 1 s interval on the standard E2
//! workload.
//!
//! Prints a `BENCH_telemetry.json` document to stdout:
//!
//! ```text
//! telemetry_overhead [--backends 64] [--waves 300] [--reps 3]
//!                    [--record-cost-us 10] [--transport copying|zerocopy|tcp]
//!                    [--date YYYY-MM-DD]
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use tbon_bench::fold;
use tbon_core::{
    BackendContext, BackendEvent, DataValue, NetworkBuilder, StreamConsumer, StreamSpec, Tag,
};
use tbon_filters::builtin_registry;
use tbon_topology::{stats::required_depth, Topology};
use tbon_transport::{local::LocalTransport, tcp::TcpTransport, Transport};

const RECORD_LEN: usize = 32;
const FANOUT: usize = 8;

fn make_transport(kind: &str) -> Arc<dyn Transport> {
    match kind {
        "copying" => Arc::new(LocalTransport::new_copying()),
        "zerocopy" => Arc::new(LocalTransport::new()),
        "tcp" => Arc::new(TcpTransport::new()),
        other => panic!("unknown transport '{other}' (copying|zerocopy|tcp)"),
    }
}

fn backend_loop(waves: usize) -> impl Fn(BackendContext) + Send + Sync {
    move |mut ctx: BackendContext| loop {
        match ctx.next_event() {
            Ok(BackendEvent::Packet { stream, .. }) => {
                for w in 0..waves {
                    let record: Vec<f64> = (0..RECORD_LEN)
                        .map(|i| (w * RECORD_LEN + i) as f64)
                        .collect();
                    if ctx
                        .send(stream, Tag(w as u32), DataValue::ArrayF64(record))
                        .is_err()
                    {
                        break;
                    }
                }
            }
            Ok(BackendEvent::Shutdown) | Err(_) => break,
            Ok(_) => continue,
        }
    }
}

/// One E2 tree run; `metrics_interval` arms the telemetry stream (merged
/// mode) for the duration of the measured waves. Returns (elapsed, samples
/// received) — samples are drained so the telemetry stream sees realistic
/// consumption, not unbounded queueing.
fn run_tree(
    backends: usize,
    waves: usize,
    transport: &str,
    record_cost: Duration,
    metrics_interval: Option<Duration>,
) -> (Duration, u64) {
    let depth = required_depth(FANOUT, backends).max(1);
    let mut levels = vec![FANOUT; depth];
    let inner: usize = levels[..depth - 1].iter().product();
    if inner > 0 && backends.is_multiple_of(inner) && backends / inner > 0 {
        levels[depth - 1] = backends / inner;
    }
    let topo = Topology::balanced_levels(&levels);
    let mut net = NetworkBuilder::new(topo)
        .transport_arc(make_transport(transport))
        .registry(builtin_registry())
        .backend(backend_loop(waves))
        .launch()
        .expect("launch");
    let metrics = metrics_interval.map(|iv| net.open_metrics_stream(iv).expect("metrics"));
    let stream = net
        .new_stream(StreamSpec::all().transformation("builtin::sum"))
        .expect("stream");
    let start = Instant::now();
    stream.broadcast(Tag(0), DataValue::Unit).expect("start");
    let mut acc = vec![0.0f64; RECORD_LEN];
    let mut samples = 0u64;
    for _ in 0..waves {
        let pkt = stream
            .recv_within(Duration::from_secs(300))
            .unwrap()
            .expect("wave");
        fold(
            &mut acc,
            pkt.value().as_array_f64().expect("wave record"),
            record_cost,
        );
        if let Some(m) = &metrics {
            while m.poll().is_some() {
                samples += 1;
            }
        }
    }
    let elapsed = start.elapsed();
    net.shutdown().expect("shutdown");
    (elapsed, samples)
}

fn main() {
    let mut backends = 64usize;
    let mut waves = 300usize;
    let mut reps = 3usize;
    let mut record_cost_us = 10u64;
    let mut transport = "copying".to_string();
    let mut date = "unknown".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--backends" => backends = it.next().unwrap().parse().unwrap(),
            "--waves" => waves = it.next().unwrap().parse().unwrap(),
            "--reps" => reps = it.next().unwrap().parse().unwrap(),
            "--record-cost-us" => record_cost_us = it.next().unwrap().parse().unwrap(),
            "--transport" => transport = it.next().unwrap(),
            "--date" => date = it.next().unwrap(),
            other => panic!("unknown flag {other}"),
        }
    }
    let record_cost = Duration::from_micros(record_cost_us);

    // (label, interval). None = telemetry plane disabled.
    let configs: [(&str, Option<Duration>); 3] = [
        ("off", None),
        ("1s", Some(Duration::from_secs(1))),
        ("100ms", Some(Duration::from_millis(100))),
    ];
    // Best-of-reps rate per config: the minimum elapsed time is the least
    // noise-polluted estimate on a shared container. Reps are interleaved
    // round-robin across the configs so load drift on the host hits all
    // three equally instead of skewing whichever ran last.
    let mut best = [Duration::MAX; 3];
    let mut total_samples = [0u64; 3];
    for _ in 0..reps {
        for (i, (_, interval)) in configs.iter().enumerate() {
            let (elapsed, samples) = run_tree(backends, waves, &transport, record_cost, *interval);
            best[i] = best[i].min(elapsed);
            total_samples[i] += samples;
        }
    }
    let mut rates = Vec::new();
    for (i, (label, _)) in configs.iter().enumerate() {
        let rate = (backends * waves) as f64 / best[i].as_secs_f64();
        eprintln!(
            "telemetry {label}: {rate:.0} rec/s (best of {reps}), {} samples",
            total_samples[i]
        );
        rates.push((*label, rate, total_samples[i]));
    }

    let base = rates[0].1;
    let overhead = |r: f64| (1.0 - r / base) * 100.0;
    let worst_1s = overhead(rates[1].1);
    let pass = worst_1s < 5.0;

    println!("{{");
    println!("  \"bench\": \"telemetry_overhead\",");
    println!(
        "  \"description\": \"E2 tree throughput ({backends} back-ends, fan-out {FANOUT}, {waves} waves of {RECORD_LEN}-f64 records, {record_cost_us}us front-end record cost, {transport} transport) with the in-band telemetry stream off, publishing at 1s, and publishing at 100ms. Rates are records/s, best of {reps} runs.\","
    );
    println!("  \"date\": \"{date}\",");
    println!(
        "  \"harness\": \"cargo run --release -p tbon-bench --bin telemetry_overhead (offline stubs, single-core container)\","
    );
    println!("  \"acceptance\": {{");
    println!(
        "    \"criterion\": \"throughput with telemetry at 1s interval regresses < 5% vs telemetry off\","
    );
    println!("    \"measured_overhead_pct_at_1s\": {worst_1s:.2},");
    println!("    \"pass\": {pass}");
    println!("  }},");
    println!("  \"results\": [");
    for (i, (label, rate, samples)) in rates.iter().enumerate() {
        let comma = if i + 1 < rates.len() { "," } else { "" };
        println!(
            "    {{ \"telemetry\": \"{label}\", \"records_per_s\": {rate:.0}, \"overhead_pct\": {:.2}, \"metrics_samples_received\": {samples} }}{comma}",
            overhead(*rate),
        );
    }
    println!("  ],");
    println!(
        "  \"notes\": \"The telemetry plane is one extra stream carrying one ~200-byte merged sample per comm process per interval; its traffic is excluded from the packet counters it reports but shares links and event loops with the workload. Negative overhead means the run fell within scheduler noise of the baseline.\""
    );
    println!("}}");
}
