//! A4 extension experiment: fixed-bandwidth (§3.1) vs. variable-bandwidth
//! (the paper's ref. \[10\]) mean-shift on mixed-density data.
//!
//! The workload overlays one tight/dense cluster, one broad/sparse cluster
//! and background noise — the regime the paper's fixed bandwidth of 50
//! struggles with. For each fixed bandwidth and for the balloon estimator
//! we report recovered modes and runtime.
//!
//! Usage: `adaptive_sweep [--points 400]`

use std::time::Instant;

use tbon_bench::render_table;
use tbon_meanshift::{run_adaptive, run_single_node, AdaptiveBandwidth, MeanShiftParams, Point2};

/// Deterministic pseudo-random in [0, 1).
fn unit(seed: &mut u64) -> f64 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*seed >> 33) as f64) / (u32::MAX as f64)
}

/// A Gaussian-ish blob via the central limit of 4 uniforms.
fn blob(center: Point2, n: usize, sigma: f64, seed: &mut u64) -> Vec<Point2> {
    (0..n)
        .map(|_| {
            let gx: f64 = (0..4).map(|_| unit(seed)).sum::<f64>() / 2.0 - 1.0;
            let gy: f64 = (0..4).map(|_| unit(seed)).sum::<f64>() / 2.0 - 1.0;
            Point2::new(center.x + gx * sigma * 1.7, center.y + gy * sigma * 1.7)
        })
        .collect()
}

fn main() {
    let mut points = 400usize;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--points" => points = it.next().unwrap().parse().unwrap(),
            other => panic!("unknown flag {other}"),
        }
    }

    let mut seed = 0x5eed_2006u64;
    // True modes: a tight cluster (sigma 10) and a broad one (sigma 70).
    let tight = Point2::new(200.0, 200.0);
    let broad = Point2::new(700.0, 500.0);
    let mut data = blob(tight, points, 10.0, &mut seed);
    data.extend(blob(broad, points / 2, 70.0, &mut seed));
    for _ in 0..points / 10 {
        data.push(Point2::new(
            unit(&mut seed) * 1000.0,
            unit(&mut seed) * 1000.0,
        ));
    }
    println!(
        "A4: fixed vs adaptive bandwidth on mixed-density data ({} points, 2 true modes)",
        data.len()
    );
    println!("tight mode sigma 10 at (200,200); broad mode sigma 70 at (700,500)");
    println!();

    let mut rows = Vec::new();
    for bw in [15.0f64, 30.0, 50.0, 80.0, 120.0] {
        let params = MeanShiftParams {
            bandwidth: bw,
            density_threshold: 8,
            merge_radius: bw,
            ..MeanShiftParams::default()
        };
        let run = run_single_node(data.clone(), &params);
        rows.push(vec![
            format!("fixed {bw}"),
            run.peaks.len().to_string(),
            run.stats.seeds.to_string(),
            format!("{:.4}", run.elapsed.as_secs_f64()),
        ]);
    }
    let params = MeanShiftParams {
        bandwidth: 40.0, // density-scan radius only
        density_threshold: 8,
        merge_radius: 60.0,
        ..MeanShiftParams::default()
    };
    let ab = AdaptiveBandwidth {
        k_neighbors: 30,
        min_bandwidth: 15.0,
        max_bandwidth: 140.0,
        growth: 1.3,
    };
    let t = Instant::now();
    let (peaks, stats) = run_adaptive(data.clone(), &params, &ab);
    rows.push(vec![
        "adaptive".into(),
        peaks.len().to_string(),
        stats.seeds.to_string(),
        format!("{:.4}", t.elapsed().as_secs_f64()),
    ]);
    println!(
        "{}",
        render_table(&["bandwidth", "peaks", "seeds", "time(s)"], &rows)
    );
    for p in &peaks {
        println!(
            "adaptive mode: ({:.1}, {:.1}) support {}",
            p.position.x, p.position.y, p.support
        );
    }
    println!();
    println!("Expected: small fixed bandwidths fragment the broad cluster, large ones");
    println!("swallow the tight one into its surroundings; the balloon estimator");
    println!("recovers both modes with one setting — the \"data-driven scale");
    println!("selection\" the paper defers to Comaniciu, Ramesh & Meer.");
}
