//! E2 at paper scale (simulated): sustained front-end record rates for
//! one-to-many vs. TBON under continuous flow, 32..4096 daemons — the
//! streaming counterpart of `e2_throughput`, free of this machine's core
//! count.
//!
//! The per-record front-end cost models Paradyn's data consumption
//! (histogram insertion, UI). One-to-many: the front-end consumes every
//! daemon's record of each wave. TBON: in-tree reduction hands it one
//! record per wave.
//!
//! Usage: `e2_sim [--record-cost-us 500] [--waves 200]`

use tbon_bench::render_table;
use tbon_sim::{simulate_waves, LinkModel, WaveWorkload};
use tbon_topology::{stats::required_depth, Topology};

fn main() {
    let mut record_cost_us = 1000f64; // 2006-era per-record tool work
    let mut waves = 200usize;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--record-cost-us" => {
                record_cost_us = it.next().unwrap().parse().unwrap();
            }
            "--waves" => waves = it.next().unwrap().parse().unwrap(),
            other => panic!("unknown flag {other}"),
        }
    }
    let link = LinkModel::gigabit_ethernet();
    let record_cost = record_cost_us * 1e-6;
    // Daemons produce a record every 40 ms (25 records/s), as a moderate
    // continuous flow.
    let leaf_cpu = 0.04;

    println!("E2 (simulated, paper scale): sustained front-end record rate");
    println!("record cost {record_cost_us}us, {waves} waves, 25 rec/s/daemon offered, GigE model");
    println!();

    let mut rows = Vec::new();
    for scale in [32usize, 64, 128, 256, 512, 1024, 4096] {
        // One-to-many: no reduction; the front-end consumes `scale` records
        // per wave.
        let direct = simulate_waves(
            &Topology::flat(scale),
            link,
            &WaveWorkload {
                leaf_cpu,
                merge_base: 0.0,
                merge_per_input: 0.0,
                record_bytes: 8.0 * 32.0,
                fe_consume: record_cost * scale as f64,
            },
            waves,
        );
        // TBON: fan-out 16 tree reduces in flight; the front-end sees one
        // record per wave; each merge costs a little CPU.
        let depth = required_depth(16, scale).max(1);
        let tree_topo = Topology::balanced_levels(&vec![16; depth]);
        let tree = simulate_waves(
            &tree_topo,
            link,
            &WaveWorkload {
                leaf_cpu,
                merge_base: 5e-6,
                merge_per_input: 2e-6,
                record_bytes: 8.0 * 32.0,
                fe_consume: record_cost,
            },
            waves,
        );
        let offered = scale as f64 / leaf_cpu;
        let direct_rate = direct.steady_rate * scale as f64;
        let tree_rate = tree.steady_rate * scale as f64;
        rows.push(vec![
            scale.to_string(),
            format!("{:.0}", offered),
            format!("{:.0}", direct_rate),
            format!("{:.0}", tree_rate),
            if direct_rate < offered * 0.9 {
                "SATURATED"
            } else {
                "ok"
            }
            .into(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "daemons",
                "offered rec/s",
                "direct rec/s",
                "tree rec/s",
                "direct FE"
            ],
            &rows
        )
    );
    println!("Paper: the one-to-many front-end \"could not process data at the rate it");
    println!("was being produced by more than 32 daemons\"; MRNet handled 512. The");
    println!("direct column saturates at 1/record-cost while the tree column tracks");
    println!("the offered load.");
}
