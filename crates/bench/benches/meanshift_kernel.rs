//! Microbenchmark: the mean-shift inner loops — grid construction, window
//! queries, one seeded search, peak merging.

use criterion::{criterion_group, criterion_main, Criterion};
use tbon_meanshift::{
    density_seeds, mean_shift, merge_peaks, MeanShiftParams, Point2, SpatialGrid, SynthSpec,
};

fn bench_meanshift(c: &mut Criterion) {
    let spec = SynthSpec::paper_default();
    let data = spec.generate(0);
    let params = MeanShiftParams::default();
    let grid = SpatialGrid::build(data.clone(), params.bandwidth);

    let mut group = c.benchmark_group("meanshift");

    group.bench_function("grid_build/1260_points", |b| {
        b.iter(|| SpatialGrid::build(std::hint::black_box(data.clone()), params.bandwidth))
    });

    group.bench_function("window_count/cluster_center", |b| {
        let center = spec.centers[0];
        b.iter(|| grid.count_in_radius(std::hint::black_box(center), params.bandwidth))
    });

    group.bench_function("density_scan/1260_points", |b| {
        b.iter(|| density_seeds(std::hint::black_box(&grid), &params))
    });

    group.bench_function("search/cold_seed", |b| {
        let start = Point2::new(spec.centers[0].x + 30.0, spec.centers[0].y - 30.0);
        b.iter(|| {
            mean_shift(
                std::hint::black_box(&grid),
                start,
                params.bandwidth,
                params.kernel,
                params.max_iterations,
                params.convergence_eps,
            )
        })
    });

    group.bench_function("search/warm_seed", |b| {
        let cold = mean_shift(
            &grid,
            spec.centers[0],
            params.bandwidth,
            params.kernel,
            params.max_iterations,
            params.convergence_eps,
        );
        b.iter(|| {
            mean_shift(
                std::hint::black_box(&grid),
                cold.peak,
                params.bandwidth,
                params.kernel,
                params.max_iterations,
                params.convergence_eps,
            )
        })
    });

    group.bench_function("merge_peaks/256_raw", |b| {
        let raw: Vec<Point2> = (0..256)
            .map(|i| {
                let c = spec.centers[i % spec.centers.len()];
                Point2::new(c.x + (i % 5) as f64, c.y - (i % 7) as f64)
            })
            .collect();
        b.iter(|| merge_peaks(std::hint::black_box(&raw), params.merge_radius))
    });

    group.finish();
}

criterion_group!(benches, bench_meanshift);
criterion_main!(benches);
