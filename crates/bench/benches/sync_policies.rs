//! A2 ablation (§2.2): synchronization filter cost under skewed arrivals.
//!
//! Feeds each built-in synchronization filter the same skewed arrival
//! pattern (children deliver in interleaved bursts) and measures the pure
//! buffering/wave-assembly overhead, independent of transport.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use tbon_core::{
    DataValue, NullSync, Packet, Rank, StreamId, SyncContext, Synchronization, Tag, TimeOut,
    WaitForAll,
};

const CHILDREN: usize = 16;
const WAVES: usize = 64;

fn ctx(expected: usize) -> SyncContext {
    SyncContext {
        stream: StreamId(1),
        rank: Rank(0),
        expected: (1..=expected as u32).map(Rank).collect(),
        now: Instant::now(),
    }
}

/// Skewed arrival schedule: child k delivers its wave-w packet in order
/// (k + w) — a rotating stagger, so wait_for_all always buffers.
fn arrivals() -> Vec<(Rank, Packet)> {
    let mut out = Vec::with_capacity(CHILDREN * WAVES);
    for round in 0..(CHILDREN + WAVES) {
        for child in 0..CHILDREN {
            let wave = round as i64 - child as i64;
            if (0..WAVES as i64).contains(&wave) {
                out.push((
                    Rank(child as u32 + 1),
                    Packet::new(
                        StreamId(1),
                        Tag(wave as u32),
                        Rank(child as u32 + 1),
                        DataValue::ArrayF64(vec![wave as f64; 32]),
                    ),
                ));
            }
        }
    }
    out
}

fn drive(sync: &mut dyn Synchronization, arrivals: &[(Rank, Packet)]) -> usize {
    let c = ctx(CHILDREN);
    let mut waves = 0;
    for (from, pkt) in arrivals {
        waves += sync.push(*from, pkt.clone(), &c).len();
    }
    waves += sync.flush(&c).len();
    waves
}

fn bench_sync(c: &mut Criterion) {
    let schedule = arrivals();
    let mut group = c.benchmark_group("sync_policies");

    group.bench_function("wait_for_all/skewed_16x64", |b| {
        b.iter(|| {
            let mut s = WaitForAll::new();
            let waves = drive(&mut s, std::hint::black_box(&schedule));
            assert_eq!(waves, WAVES);
            waves
        })
    });

    group.bench_function("null/skewed_16x64", |b| {
        b.iter(|| {
            let mut s = NullSync;
            let waves = drive(&mut s, std::hint::black_box(&schedule));
            assert_eq!(waves, CHILDREN * WAVES);
            waves
        })
    });

    group.bench_function("time_out/skewed_16x64", |b| {
        b.iter(|| {
            // A zero-width window: flush releases everything buffered.
            let mut s = TimeOut::new(std::time::Duration::ZERO);
            drive(&mut s, std::hint::black_box(&schedule))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_sync);
criterion_main!(benches);
