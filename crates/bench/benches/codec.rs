//! Microbenchmark: wire codec throughput for representative payloads.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use tbon_core::codec::{decode_value, encode_value_to_vec};
use tbon_core::DataValue;

fn payloads() -> Vec<(&'static str, DataValue)> {
    vec![
        ("scalar_i64", DataValue::I64(42)),
        (
            "metric_record_32f",
            DataValue::ArrayF64((0..32).map(|i| i as f64).collect()),
        ),
        (
            "meanshift_1k_points",
            DataValue::ArrayF64((0..2048).map(|i| i as f64 * 0.5).collect()),
        ),
        (
            "catalog_50_strings",
            DataValue::Tuple(
                (0..50)
                    .map(|i| DataValue::Str(format!("metric/shared/cpu_time_{i}")))
                    .collect(),
            ),
        ),
        (
            "nested_classes",
            DataValue::Tuple(
                (0..8)
                    .map(|i| {
                        DataValue::Tuple(vec![
                            DataValue::Str(format!("class_{i}")),
                            DataValue::ArrayI64((0..64).collect()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    for (name, value) in payloads() {
        let bytes = encode_value_to_vec(&value);
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_function(format!("encode/{name}"), |b| {
            b.iter(|| encode_value_to_vec(std::hint::black_box(&value)))
        });
        group.bench_function(format!("decode/{name}"), |b| {
            b.iter_batched(
                || bytes.clone(),
                |buf| decode_value(std::hint::black_box(&buf)).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
