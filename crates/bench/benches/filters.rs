//! Microbenchmark: per-wave throughput of each built-in transformation
//! filter at representative fan-ins.

use criterion::{criterion_group, criterion_main, Criterion};
use tbon_core::{DataValue, FilterContext, Packet, Rank, StreamId, Tag};
use tbon_filters::builtin_registry;

fn wave_of(fanin: usize, make: impl Fn(usize) -> DataValue) -> Vec<Packet> {
    (0..fanin)
        .map(|i| Packet::new(StreamId(1), Tag(0), Rank(i as u32 + 1), make(i)))
        .collect()
}

fn bench_filters(c: &mut Criterion) {
    let reg = builtin_registry();
    let mut group = c.benchmark_group("filters");

    for fanin in [8usize, 64] {
        // Numeric reductions over 32-element records.
        for name in ["builtin::sum", "builtin::min", "builtin::max"] {
            group.bench_function(format!("{name}/fanin{fanin}"), |b| {
                let mut f = reg.create_transformation(name, &DataValue::Unit).unwrap();
                let mut ctx = FilterContext::new(StreamId(1), Rank(0), false, fanin);
                b.iter(|| {
                    let wave = wave_of(fanin, |i| {
                        DataValue::ArrayF64((0..32).map(|j| (i + j) as f64).collect())
                    });
                    f.transform(std::hint::black_box(wave), &mut ctx).unwrap()
                })
            });
        }

        group.bench_function(format!("builtin::avg/fanin{fanin}"), |b| {
            let mut f = reg
                .create_transformation("builtin::avg", &DataValue::Unit)
                .unwrap();
            let mut ctx = FilterContext::new(StreamId(1), Rank(0), false, fanin);
            b.iter(|| {
                let wave = wave_of(fanin, |i| DataValue::F64(i as f64));
                f.transform(std::hint::black_box(wave), &mut ctx).unwrap()
            })
        });

        group.bench_function(format!("builtin::concat/fanin{fanin}"), |b| {
            let mut f = reg
                .create_transformation("builtin::concat", &DataValue::Unit)
                .unwrap();
            let mut ctx = FilterContext::new(StreamId(1), Rank(0), false, fanin);
            b.iter(|| {
                let wave = wave_of(fanin, |i| {
                    DataValue::ArrayF64((0..32).map(|j| (i * j) as f64).collect())
                });
                f.transform(std::hint::black_box(wave), &mut ctx).unwrap()
            })
        });

        // Equivalence classes on 90%-redundant catalogs.
        group.bench_function(format!("filter::equivalence/fanin{fanin}"), |b| {
            let mut f = reg
                .create_transformation("filter::equivalence", &DataValue::Unit)
                .unwrap();
            let mut ctx = FilterContext::new(StreamId(1), Rank(0), false, fanin);
            b.iter(|| {
                let wave = wave_of(fanin, |i| {
                    DataValue::Str(format!("config_variant_{}", i % 3))
                });
                f.transform(std::hint::black_box(wave), &mut ctx).unwrap()
            })
        });

        // Histogram merge of pre-binned counts.
        group.bench_function(format!("filter::histogram/fanin{fanin}"), |b| {
            let params = DataValue::Tuple(vec![
                DataValue::F64(0.0),
                DataValue::F64(100.0),
                DataValue::U64(64),
            ]);
            let mut f = reg
                .create_transformation("filter::histogram", &params)
                .unwrap();
            let mut ctx = FilterContext::new(StreamId(1), Rank(0), false, fanin);
            b.iter(|| {
                let wave = wave_of(fanin, |i| {
                    DataValue::ArrayI64((0..64).map(|j| ((i + j) % 7) as i64).collect())
                });
                f.transform(std::hint::black_box(wave), &mut ctx).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_filters);
criterion_main!(benches);
