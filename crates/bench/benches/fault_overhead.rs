//! Chaos-layer tax: what does wrapping the transport in a `FaultyTransport`
//! cost when the `FaultPlan` injects nothing?
//!
//! The fault layer sits on every connect/send/recv even when all its
//! probabilities are zero (it still consults the per-link schedule), so the
//! interesting number is the no-fault overhead against the bare transport —
//! that is the price of leaving chaos plumbing compiled into a test build.
//! A third variant measures a lightly faulty plan (seeded delays) to show
//! the injection path itself.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use tbon_core::{
    BackendContext, BackendEvent, DataValue, NetworkBuilder, StreamConsumer, StreamSpec, Tag,
};
use tbon_filters::builtin_registry;
use tbon_topology::Topology;
use tbon_transport::fault::FaultPlan;

fn rank_echo(mut ctx: BackendContext) {
    loop {
        match ctx.next_event() {
            Ok(BackendEvent::Packet { stream, packet }) => {
                let _ = ctx.send(stream, packet.tag(), DataValue::I64(ctx.rank().0 as i64));
            }
            Ok(BackendEvent::Shutdown) | Err(_) => break,
            Ok(_) => continue,
        }
    }
}

fn waves(plan: Option<FaultPlan>, rounds: usize) {
    let mut builder = NetworkBuilder::new(Topology::balanced(4, 2))
        .registry(builtin_registry())
        .backend(rank_echo);
    if let Some(plan) = plan {
        builder = builder.fault_plan(plan);
    }
    let mut net = builder.launch().expect("launch");
    let stream = net
        .new_stream(StreamSpec::all().transformation("builtin::sum"))
        .expect("stream");
    for round in 0..rounds {
        stream
            .broadcast(Tag(round as u32), DataValue::Unit)
            .expect("broadcast");
        stream
            .recv_within(Duration::from_secs(30))
            .unwrap()
            .expect("reduced");
    }
    net.shutdown().expect("shutdown");
}

fn bench_fault_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_overhead");
    group.sample_size(10);
    group.bench_function("bare/waves_16_leaves", |b| b.iter(|| waves(None, 10)));
    group.bench_function("fault_layer_idle/waves_16_leaves", |b| {
        b.iter(|| waves(Some(FaultPlan::new(7)), 10))
    });
    group.bench_function("fault_layer_delays/waves_16_leaves", |b| {
        b.iter(|| {
            waves(
                Some(FaultPlan::new(7).delay_frames(0.05, Duration::from_micros(200))),
                10,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fault_overhead);
criterion_main!(benches);
