//! Encode-once multicast vs encode-per-child.
//!
//! A communication process multicasting one packet to N wire children used
//! to serialize the message once per child; the [`Envelope`] memo
//! (`crates/core/src/proto.rs`) caches the first encoding so every further
//! child only clones an `Arc<[u8]>` into its frame. This bench measures the
//! send-side cost of both strategies across fan-out × payload-size, feeding
//! the frames to a null sink so only the encode path is on the clock.
//!
//! Baseline numbers live in `results/BENCH_multicast.json`; the acceptance
//! bar is encode-once ≥ 2x faster at fan-out 8 with 64 KiB payloads.

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use tbon_core::proto::{encode_message, Envelope, Message};
use tbon_core::{DataValue, Rank, StreamId, Tag};
use tbon_transport::Frame;

const FANOUTS: [usize; 3] = [2, 8, 32];
const PAYLOADS: [(&str, usize); 3] = [("64B", 64), ("64KiB", 64 * 1024), ("1MiB", 1 << 20)];

/// Distinct packets multicast per timed routine. Batching keeps the two
/// strategies symmetric with respect to allocator and cache warmth: both
/// consume an identical untimed batch of messages, so neither gets to
/// recycle one hot buffer across the whole measurement.
const BATCH: usize = 16;

fn down_packet(payload_len: usize) -> Message {
    Message::Down {
        stream: StreamId(1),
        tag: Tag(7),
        origin: Rank(0),
        sent_us: 0,
        trace: 0,
        value: DataValue::Bytes(vec![0xA5; payload_len]),
    }
}

/// The old send loop: every child link serializes the message itself.
fn encode_per_child(msg: &Message, fanout: usize) {
    for _ in 0..fanout {
        let bytes: Arc<[u8]> = encode_message(msg).into();
        black_box(Frame::Bytes(bytes));
    }
}

/// The envelope path: the first child pays for the one serialization, every
/// further child shares the cached buffer. Takes the message by value, like
/// the real send path: `send_down_packet` builds one envelope per packet and
/// never re-clones the message per child.
fn encode_once(msg: Message, fanout: usize) {
    let env = Envelope::new(msg);
    for _ in 0..fanout {
        let (bytes, _fresh) = env.encoded();
        black_box(Frame::Bytes(Arc::clone(bytes)));
    }
}

fn bench_multicast_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("multicast_fanout");
    for (label, payload_len) in PAYLOADS {
        let msg = down_packet(payload_len);
        let wire = encode_message(&msg).len() as u64;
        let make_batch = || vec![msg.clone(); BATCH];
        for fanout in FANOUTS {
            group.throughput(Throughput::Bytes(wire * (fanout * BATCH) as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("encode_per_child/{label}"), fanout),
                &fanout,
                |b, &n| {
                    b.iter_batched(
                        make_batch,
                        |batch| {
                            for m in &batch {
                                encode_per_child(black_box(m), n);
                            }
                        },
                        BatchSize::LargeInput,
                    )
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("encode_once/{label}"), fanout),
                &fanout,
                |b, &n| {
                    b.iter_batched(
                        make_batch,
                        |batch| {
                            for m in batch {
                                encode_once(black_box(m), n);
                            }
                        },
                        BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_multicast_fanout);
criterion_main!(benches);
