//! Microbenchmark: sustained end-to-end wave throughput of a real overlay
//! (threads + channels) across tree shapes — the live counterpart of the
//! `tbon-sim::waves` model.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tbon_core::{
    BackendContext, BackendEvent, DataValue, NetworkBuilder, StreamConsumer, StreamSpec, Tag,
};
use tbon_filters::builtin_registry;
use tbon_topology::Topology;

const WAVES: usize = 50;
const RECORD_LEN: usize = 32;

fn burst_backend(mut ctx: BackendContext) {
    loop {
        match ctx.next_event() {
            Ok(BackendEvent::Packet { stream, .. }) => {
                for w in 0..WAVES {
                    let rec: Vec<f64> = (0..RECORD_LEN).map(|i| (w + i) as f64).collect();
                    if ctx
                        .send(stream, Tag(w as u32), DataValue::ArrayF64(rec))
                        .is_err()
                    {
                        return;
                    }
                }
            }
            Ok(BackendEvent::Shutdown) | Err(_) => break,
            Ok(_) => continue,
        }
    }
}

fn run_waves(topo: Topology) {
    let mut net = NetworkBuilder::new(topo)
        .registry(builtin_registry())
        .backend(burst_backend)
        .launch()
        .expect("launch");
    let stream = net
        .new_stream(StreamSpec::all().transformation("builtin::sum"))
        .expect("stream");
    stream.broadcast(Tag(0), DataValue::Unit).expect("start");
    for _ in 0..WAVES {
        stream
            .recv_within(Duration::from_secs(30))
            .unwrap()
            .expect("wave result");
    }
    net.shutdown().expect("shutdown");
}

fn bench_wave_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("wave_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(WAVES as u64));
    group.bench_function("flat_16/50_waves", |b| {
        b.iter(|| run_waves(Topology::flat(16)))
    });
    group.bench_function("deep_4x4/50_waves", |b| {
        b.iter(|| run_waves(Topology::balanced(4, 2)))
    });
    group.bench_function("deep_2x2x2x2/50_waves", |b| {
        b.iter(|| run_waves(Topology::balanced(2, 4)))
    });
    group.finish();
}

criterion_group!(benches, bench_wave_throughput);
criterion_main!(benches);
