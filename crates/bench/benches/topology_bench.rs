//! Microbenchmark: topology construction and routing at paper scales.

use criterion::{criterion_group, criterion_main, Criterion};
use tbon_topology::{NodeId, Topology, TopologyStats};

fn bench_topology(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology");

    group.bench_function("build/balanced_16x16", |b| {
        b.iter(|| Topology::balanced(std::hint::black_box(16), 2))
    });
    group.bench_function("build/balanced_16x16x16", |b| {
        b.iter(|| Topology::balanced(std::hint::black_box(16), 3))
    });
    group.bench_function("build/knomial_2_12", |b| {
        b.iter(|| Topology::knomial(2, std::hint::black_box(12)))
    });

    let big = Topology::balanced(16, 3); // 4096 leaves
    let members: Vec<NodeId> = big.leaves();
    group.bench_function("route/root_4096_members", |b| {
        b.iter(|| big.route(big.root(), std::hint::black_box(&members)))
    });

    let subset: Vec<NodeId> = members.iter().copied().step_by(7).collect();
    group.bench_function("route/root_sparse_members", |b| {
        b.iter(|| big.route(big.root(), std::hint::black_box(&subset)))
    });

    group.bench_function("stats/balanced_16x16x16", |b| {
        b.iter(|| TopologyStats::of(std::hint::black_box(&big)))
    });

    group.finish();
}

criterion_group!(benches, bench_topology);
criterion_main!(benches);
