//! A1 ablation (§2.2 "high-performance communication"): counted packet
//! references vs copy-per-hop.
//!
//! Runs the same broadcast+gather through (a) the zero-copy local
//! transport, where one `Arc<Message>` serves every hop, and (b) the
//! copying local transport, where every hop serializes and re-parses the
//! packet — the implementation MRNet's counted references avoid.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use tbon_core::{
    BackendContext, BackendEvent, DataValue, NetworkBuilder, StreamConsumer, StreamSpec, Tag,
};
use tbon_filters::builtin_registry;
use tbon_topology::Topology;
use tbon_transport::local::LocalTransport;

const PAYLOAD_LEN: usize = 16 * 1024; // 128 KiB of f64s per packet

fn echo_payload(mut ctx: BackendContext) {
    loop {
        match ctx.next_event() {
            Ok(BackendEvent::Packet { stream, packet }) => {
                let _ = ctx.send(stream, packet.tag(), packet.value().clone());
            }
            Ok(BackendEvent::Shutdown) | Err(_) => break,
            Ok(_) => continue,
        }
    }
}

fn roundtrip(zero_copy: bool, rounds: usize) {
    let transport = if zero_copy {
        LocalTransport::new()
    } else {
        LocalTransport::new_copying()
    };
    let mut net = NetworkBuilder::new(Topology::balanced(4, 2))
        .transport(transport)
        .registry(builtin_registry())
        .backend(echo_payload)
        .launch()
        .expect("launch");
    let stream = net
        .new_stream(StreamSpec::all().transformation("builtin::sum"))
        .expect("stream");
    let payload: Vec<f64> = (0..PAYLOAD_LEN).map(|i| i as f64).collect();
    for round in 0..rounds {
        stream
            .broadcast(Tag(round as u32), DataValue::ArrayF64(payload.clone()))
            .expect("broadcast");
        stream
            .recv_within(Duration::from_secs(30))
            .unwrap()
            .expect("reduced");
    }
    net.shutdown().expect("shutdown");
}

fn bench_packet_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("packet_paths");
    group.sample_size(10);
    group.bench_function("zero_copy/broadcast_gather_16_leaves", |b| {
        b.iter(|| roundtrip(true, 3))
    });
    group.bench_function("copy_per_hop/broadcast_gather_16_leaves", |b| {
        b.iter(|| roundtrip(false, 3))
    });
    group.finish();
}

criterion_group!(benches, bench_packet_paths);
criterion_main!(benches);
